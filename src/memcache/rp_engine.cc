#include "src/memcache/rp_engine.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstddef>
#include <cstring>
#include <deque>
#include <mutex>
#include <new>

#include "src/core/hash.h"
#include "src/core/resize_worker.h"
#include "src/core/rp_hash_map.h"
#include "src/memcache/slab.h"
#include "src/rcu/callback.h"
#include "src/rcu/epoch.h"
#include "src/rcu/reclaimer.h"
#include "src/sync/seqlock.h"

namespace rp::memcache {

namespace {

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

// The engine owns resize policy: the table never resizes inline (writers
// would absorb grace-period waits); each shard's background worker does it
// instead.
core::RpHashMapOptions TableOptions() {
  core::RpHashMapOptions options;
  options.auto_resize = false;
  return options;
}

core::ResizeWorkerOptions WorkerOptions(std::size_t shard_buckets,
                                        std::size_t shard_count) {
  core::ResizeWorkerOptions options;
  // Never shrink below the operator-provisioned initial capacity.
  options.min_buckets = std::max<std::size_t>(shard_buckets, 16);
  // Growth is nudge-driven (stores/deletes wake the worker immediately);
  // the poll is only a shrink backstop. Scale it by the shard count so the
  // engine-wide wakeup rate stays constant as shards multiply — 8 idle
  // workers each polling at 10ms would burn ~1% of a small box on context
  // switches alone.
  options.poll_interval = std::chrono::milliseconds(10 * shard_count);
  return options;
}

std::size_t ShardCountFor(const EngineConfig& config) {
  // Each shard costs a table plus a resize-worker thread, and the config
  // may come from a command line: clamp before rounding so a bogus value
  // (including a negative cast to size_t) can neither hang CeilPowerOfTwo
  // nor spawn an unbounded thread army.
  constexpr std::size_t kMaxShards = 4096;
  return core::CeilPowerOfTwo(
      std::min(std::max<std::size_t>(config.shards, 1), kMaxShards));
}

// Engine-provisioned capacity is split across shards: per-shard tables
// start (and floor) at an even slice of initial_buckets.
std::size_t ShardBucketsFor(const EngineConfig& config, std::size_t shards) {
  return core::CeilPowerOfTwo(
      std::max<std::size_t>(config.initial_buckets / shards, 8));
}

// Evenly split budget, rounded up so the shard caps sum to >= the global
// cap (never exceeding it matters per shard; the sum staying close to the
// configured total matters for capacity planning).
std::size_t PerShard(std::size_t global, std::size_t shards) {
  return global == 0 ? 0 : std::max<std::size_t>((global + shards - 1) / shards, 1);
}

// Values up to this size are EMBEDDED in the node's own chunk (the full
// combined item layout: node + key + value bytes in ONE allocation). 256
// keeps the worst case — a 250-byte key plus the 256-byte payload class —
// inside the node slab's 1024-byte chunk_max, so an embedded item can
// never be forced onto the heap fallback by its own geometry.
constexpr std::size_t kEmbedMaxData = 256;

// Whether the combined layout will embed a payload of `size`. Pooling
// disabled (chunk_max == 0 — the abl12 per-payload-malloc baseline) keeps
// the separate exact-size allocation so that baseline still measures what
// it claims to.
bool ShouldEmbedPayload(const SlabAllocator& value_slab, std::size_t size) {
  return size != 0 && size <= kEmbedMaxData &&
         value_slab.policy().chunk_max != 0;
}

// Payload bytes staged for the next CombinedNodeAlloc::Create on this
// thread. The table's Create signature carries exactly (hash, key, value),
// so the engine hands the to-be-embedded bytes through this side channel
// (set immediately before the table call, consumed — and cleared — first
// thing inside Create). When set, the accompanying CacheValue's buffer is
// empty; Create copies the staged bytes into the node chunk's trailing
// region instead of the value ever owning a separate chunk.
thread_local std::string_view g_staged_payload;

// Node allocation policy for the combined item layout (memcached's single-
// allocation item): each table node, its key bytes, and — for payloads up
// to kEmbedMaxData — its value bytes are carved from ONE chunk of the
// shard's node slab. The node occupies the front, the key bytes follow,
// and the embedded payload sits in the aligned tail behind a slab header
// of its own (stamped kEmbeddedClass: footprint/capacity queries behave
// like a pooled chunk, Free is a no-op — the node chunk owns the bytes).
// The embedded capacity mirrors the value slab's class capacity for the
// size, so byte accounting is bit-identical whether a payload is embedded
// or pooled. A steady-state overwrite therefore touches the heap zero
// times and the allocator exactly once: one node-slab chunk out, one
// retired chunk back after a grace period (Deallocate runs from the
// deferred reclaimer), so readers mid-section can never observe a reused
// node, key, or value region.
struct CombinedNodeAlloc {
  SlabAllocator* node_slab = nullptr;
  SlabAllocator* value_slab = nullptr;

  template <typename Node, typename K, typename V>
  Node* Create(std::size_t hash, const K& key, V&& value) const {
    // Slab payloads are 8-byte aligned (kChunkAlign); that covers the node.
    static_assert(alignof(Node) <= 8, "node must fit slab chunk alignment");
    const std::string_view k(key);
    const std::string_view data = g_staged_payload;
    g_staged_payload = {};
    const std::size_t key_end = sizeof(Node) + k.size();
    std::size_t embed_off = 0;
    std::size_t total = key_end;
    if (!data.empty()) {
      // Reserve the value slab's class footprint (header included) so the
      // embedded region is indistinguishable from a pooled payload chunk:
      // footprint() == FootprintFor(size()) stays an invariant and the
      // in-place Assign rule sees the same capacity either way.
      const std::size_t fp = value_slab->FootprintFor(data.size());
      embed_off = ((key_end + SlabAllocator::kChunkAlign - 1) &
                   ~(SlabAllocator::kChunkAlign - 1)) +
                  SlabAllocator::kHeaderBytes;
      total = embed_off + (fp - SlabAllocator::kHeaderBytes);
    }
    char* mem = node_slab->Allocate(total);
    char* key_bytes = mem + sizeof(Node);
    if (!k.empty()) {
      std::memcpy(key_bytes, k.data(), k.size());
    }
    Node* node = new (mem)
        Node(hash, ItemKey{key_bytes, static_cast<std::uint32_t>(k.size())},
             std::forward<V>(value));
    if (!data.empty()) {
      char* payload = mem + embed_off;
      SlabAllocator::StampEmbedded(payload, total - embed_off, value_slab);
      node->value.data = SlabBuffer::FromChunk(payload, data);
    }
    return node;
  }

  template <typename Node>
  Node* Clone(const Node& node) const {
    // Embeddable payloads are staged and re-embedded in the new node's
    // chunk — copying them through a temporary value-slab chunk first
    // would waste an allocate/copy/free triple per update. The source
    // node stays alive (the caller holds its stripe) until Create has
    // copied the staged bytes out.
    const SlabBuffer& data = node.value.data;
    if (ShouldEmbedPayload(*value_slab, data.size())) {
      g_staged_payload = data.view();
      return Create<Node>(node.hash, node.key,
                          CacheValue::MetadataCopy(node.value));
    }
    return Create<Node>(node.hash, node.key, node.value);
  }

  // Every `delete node` inside the table (and the deferred reclaimer's
  // type-erased deleter) dispatches here through the node's class-scope
  // operator delete; the 16-byte slab header in front of the chunk routes
  // the free back to the owning shard's node slab, heap fallbacks
  // included — no instance state needed. Embedded payload sub-headers
  // free as part of the chunk (their own Free is a no-op).
  static void Deallocate(void* p) noexcept {
    SlabAllocator::Free(static_cast<char*>(p));
  }
};

// Geometry for the node slab: combined node+key+embedded-value allocations
// run from sizeof(Node) (~100 bytes) up to sizeof(Node) + kMaxKeyLength
// (250) + header + the kEmbedMaxData payload class (~320), so classes span
// 64..1024 and the arena is uncapped — its footprint is bounded by the
// item caps (every chunk backs exactly one linked or in-flight node), not
// by a byte budget of its own.
SlabPolicy NodeSlabPolicy() {
  SlabPolicy policy;
  policy.chunk_min = 64;
  policy.chunk_max = 1024;
  policy.arena_bytes = 0;
  return policy;
}

// Victim bounds for the class-exhaustion sweep. The sweep is
// class-targeted (only items whose chunk belongs to the dry class are
// evicted — freed chunks return to their own class, so evicting anything
// else is pure collateral), and chunks freed here return only after a
// grace period, so it cannot run "until a chunk is free": it unlinks a
// couple of matching victims and lets the caller drain the reclaimer.
constexpr std::size_t kClassEvictBatch = 2;
constexpr std::size_t kClassEvictPops = 64;

// -- Maintenance-plane geometry ------------------------------------------

// Hot-key front cache: direct-mapped ways per shard (way = hash & mask).
constexpr std::size_t kFrontWays = 4;
// Detector: lossy per-stripe op counters (stripe = middle hash bits), and
// the size of the space-saving candidate table they feed.
constexpr std::size_t kStripeCounters = 64;
constexpr std::size_t kCandidates = 8;
// Every kDetectorSample-th op on a stripe feeds the candidate table; a
// candidate needs kPromoteThreshold sampled observations within one tick
// window to earn a way. At the 64x sampling rate that means a key must
// absorb on the order of a quarter of a stripe's recent traffic — a real
// hot key, not a lucky one.
constexpr std::uint32_t kDetectorSample = 64;
constexpr std::uint32_t kPromoteThreshold = 4;
// Crawler: buckets walked and dead keys collected per tick. Small on
// purpose — the tick shares the resize worker's thread.
constexpr std::size_t kCrawlBuckets = 8;
constexpr std::size_t kCrawlReclaimMax = 32;
// Upper bound on callbacks the tick's inline reclaimer pump will run.
constexpr std::size_t kTickPumpMax = 128;

// Snapshot of one promoted item, published through a SeqlockBytes region.
// Flat by construction (the seqlock copies raw words): key and value bytes
// are inlined, which caps front-cacheable values at kEmbedMaxData — the
// same class the combined item layout embeds, so "small enough to embed"
// and "small enough to front-cache" are one boundary. expire_at/stored_at
// ride along so the GET fast path applies the SAME liveness rules
// (IsExpired/IsFlushed against the shard's current flush_at) as a table
// walk would — the front cache can go stale only in ways a mutation
// invalidates, never through time alone.
// Key and value bytes are PACKED back to back in `bytes` (key first)
// rather than given fixed slots, so a hit's seqlock read copies only
// header + key_len + value_len bytes instead of the full region — for a
// typical small key/value that is ~7x fewer atomic word loads, and it is
// what lets the front-cache GET beat the table walk (abl14).
// Trivially constructible ON PURPOSE: a front-cache GET declares one on
// its stack, and zero-initializing the 500+ byte region per GET would
// cost more than the table walk it bypasses. Every byte the reader
// inspects was copied by TryReadPrefix first.
struct FrontSnap {
  std::size_t hash;
  std::uint64_t cas;
  std::int64_t expire_at;
  std::int64_t stored_at;
  std::uint32_t flags;
  std::uint16_t key_len;
  std::uint16_t value_len;
  char bytes[256 + kEmbedMaxData];  // protocol caps keys at 250 bytes

  const char* key_bytes() const { return bytes; }
  const char* value_bytes() const { return bytes + key_len; }
};
constexpr std::size_t kFrontMaxKey = 256;
constexpr std::size_t kFrontHeaderBytes = offsetof(FrontSnap, bytes);
static_assert(sizeof(FrontSnap) % 8 == 0, "seqlock region is word-copied");
static_assert(kFrontHeaderBytes % 8 == 0, "packed bytes start word-aligned");

}  // namespace

// One keyspace partition: the full engine column — slab arena, table,
// resize worker, store mutex, eviction queue, flush deadline, byte gauge,
// stats. Shards are heap-allocated (unique_ptr) so their hot atomics never
// share a cache line across shards.
struct RpEngine::Shard {
  // Concurrent-writer configuration: striped writer locks (the table
  // default) and deferred reclamation, spelled out so the engine's choice
  // survives a change of table defaults. Keys are stored as ItemKeys
  // pointing into the node's own slab chunk (combined item layout — see
  // CombinedNodeAlloc above); the transparent KeyEqual compares them
  // against string/string_view probes straight out of a parsed request,
  // and the transparent hasher never rehashes a stored key (the node
  // carries its hash).
  using Table =
      core::RpHashMap<ItemKey, CacheValue, core::MixedHash<std::string>,
                      ItemKeyEqual, rcu::Epoch,
                      rcu::DeferredReclaimer<rcu::Epoch>, CombinedNodeAlloc>;

  Shard(RpEngine* engine, const SlabPolicy& slab_policy, std::size_t buckets,
        std::size_t shard_index, std::size_t shard_count)
      : slab(slab_policy),
        node_slab(NodeSlabPolicy()),
        table(buckets, TableOptions(), CombinedNodeAlloc{&node_slab, &slab}),
        next_cas(shard_index + 1),
        cas_step(shard_count),
        resize_worker(table,
                      TickingWorkerOptions(engine, this, buckets, shard_count)) {
  }

  // The maintenance tick piggybacks on the shard's existing resize-worker
  // wakeup — one background cadence per shard, not a second thread.
  // resize_worker is the LAST member, so by the time its thread can fire
  // the tick every other member of this Shard is fully constructed.
  static core::ResizeWorkerOptions TickingWorkerOptions(
      RpEngine* engine, Shard* self, std::size_t buckets,
      std::size_t shard_count) {
    core::ResizeWorkerOptions options = WorkerOptions(buckets, shard_count);
    options.maintenance_tick = [engine, self] {
      engine->MaintenanceTick(*self);
    };
    return options;
  }

  // Payload chunks for this shard's values. Declared before the table:
  // the table's destructor drains deferred reclamation (destroying every
  // retired value, whose chunks flow back here) and then deletes the
  // still-linked nodes, so the allocator must be destroyed strictly after
  // the table.
  SlabAllocator slab;
  // Combined node+key chunks (CombinedNodeAlloc). Same destruction-order
  // constraint as the payload slab: every node the table deletes frees
  // into it.
  SlabAllocator node_slab;

  Table table;

  // Serializes the insert/eviction bookkeeping ops of this shard. The
  // table's striped locks already serialize per-key updates; this mutex
  // exists because eviction state (fifo) must change atomically with
  // table membership — but it is per shard, so SETs to different shards
  // never contend. StoreMutex counts acquisitions in TLS so tests can pin
  // the one-lock-per-batch invariant.
  StoreMutex store_mutex;
  // Approximate LRU: insertion-ordered queue scanned with a second-chance
  // test against the GET path's relaxed last_used stamps. Exact LRU would
  // reintroduce a shared write per GET — the very serialization the RP
  // port removes — so eviction precision is traded for reader scalability.
  std::deque<std::string> fifo;

  // flush_all deadline for this shard's items (kNoFlush = none pending).
  std::atomic<std::int64_t> flush_at{kNoFlush};
  // Charged bytes resident in this shard: key + actual chunk footprint +
  // overhead per item. Every delta is applied either under the store
  // mutex (insert/evict/flush) or inside a table callback under the key's
  // stripe (size-changing updates, conditional erases), so the gauge
  // tracks table membership exactly.
  std::atomic<std::uint64_t> bytes{0};
  // Slab internal fragmentation share of `bytes` (chunk footprint minus
  // stored payload), maintained at the same points as the gauge.
  std::atomic<std::uint64_t> bytes_wasted{0};

  std::atomic<std::uint64_t> get_hits{0};
  std::atomic<std::uint64_t> get_misses{0};
  std::atomic<std::uint64_t> sets{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> expired_reclaims{0};
  std::atomic<std::uint64_t> total_items{0};

  // Per-shard CAS source: stepped by the shard count and seeded with
  // shard_index + 1, so values stay nonzero and unique engine-wide without
  // a single engine-global atomic on every store.
  std::atomic<std::uint64_t> next_cas;
  const std::uint64_t cas_step;

  // -- Hot-key front cache ------------------------------------------------
  //
  // One seqlock-published snapshot per way. Coherence protocol (the
  // "never serves a value the table would not" invariant, enforced by the
  // conformance matrix and the TSan torture suite):
  //   * Only the maintenance tick publishes (PublishFrontWay), reading the
  //     value from the table itself — never from request-path state.
  //   * EVERY mutation that commits to the table calls InvalidateFront
  //     AFTER its table call returns: it bumps the way's inval_gen and
  //     clears the tag if this key is the promoted one. The publisher
  //     rechecks inval_gen under write_mu before publishing, so a snapshot
  //     read concurrently with a mutation can never be published after it.
  //   * The mutator's fence/counter handshake with front_inflight closes
  //     the window where a promotion is mid-flight but not yet visible.
  struct FrontEntry {
    // 0 = way empty; otherwise the promoted key's full mixed hash. GETs
    // compare the full key bytes from the snapshot, so a colliding key
    // simply falls through to the table walk.
    std::atomic<std::size_t> tag{0};
    // Bumped (under write_mu) by every mutation routed to this way.
    std::atomic<std::uint64_t> inval_gen{0};
    // Serializes publisher vs invalidator metadata transitions. Leaf lock:
    // nothing is acquired under it.
    std::mutex write_mu;
    sync::SeqlockBytes<sizeof(FrontSnap)> snap;
  };
  FrontEntry front[kFrontWays];
  // Ways currently published / promotions currently in flight. Mutations
  // fence then read both; 0+0 means no invalidation work is possible, so
  // an engine with a cold front cache pays one fence and two relaxed
  // loads per mutation.
  std::atomic<std::size_t> front_active{0};
  std::atomic<std::size_t> front_inflight{0};

  // Detector: lossy per-stripe op counters (plain relaxed load+store — a
  // dropped increment under a race is noise) feeding a small space-saving
  // candidate table under try-lock.
  std::array<std::atomic<std::uint32_t>, kStripeCounters> op_counts{};
  std::mutex cand_mu;
  struct Candidate {
    std::size_t hash = 0;
    std::uint32_t count = 0;
    std::string key;
  };
  Candidate cands[kCandidates];

  // Tick-private state, guarded by tick_mu (the RunMaintenanceTick test
  // hook may race the worker's own tick).
  std::mutex tick_mu;
  std::string front_keys[kFrontWays];  // key owned by each claimed way
  std::size_t front_hashes[kFrontWays] = {};
  std::vector<std::uint64_t> automove_seen;  // last-seen exhaustion counts
  std::size_t crawl_cursor = 0;

  // Maintenance-plane counters (surfaced through EngineStats).
  std::atomic<std::uint64_t> hot_key_promotions{0};
  std::atomic<std::uint64_t> front_cache_hits{0};
  std::atomic<std::uint64_t> set_combines{0};
  std::atomic<std::uint64_t> crawler_reclaims{0};

  // Deferred (rhashtable-style) resizes: stores and deletes nudge the
  // worker instead of absorbing resize cost inline. Declared after the
  // table so it stops before the table is destroyed.
  core::ResizeWorker<Table> resize_worker;

  // Gauge helpers: every size-changing path funnels through these so the
  // charge formula (and the waste share) cannot drift between paths.
  void ChargeValue(std::size_t key_size, const CacheValue& value) {
    bytes.fetch_add(ChargedBytes(key_size, value.data),
                    std::memory_order_relaxed);
    bytes_wasted.fetch_add(WastedBytes(value.data), std::memory_order_relaxed);
  }
  void RefundValue(std::size_t key_size, const CacheValue& value) {
    bytes.fetch_sub(ChargedBytes(key_size, value.data),
                    std::memory_order_relaxed);
    bytes_wasted.fetch_sub(WastedBytes(value.data), std::memory_order_relaxed);
  }
  // Delta form for value overwrites. The old pair MUST come from the
  // ORIGINAL stored value (captured in an UpdateIf predicate, which runs
  // on it under the stripe) — never from the update clone, whose freshly
  // allocated chunk can have a different footprint when pooled and
  // fallback allocations mix. (Unsigned wraparound is fine: the gauge
  // only ever sums matched charge/refund pairs.)
  void RechargeValue(std::size_t old_footprint, std::size_t old_size,
                     const CacheValue& value) {
    bytes.fetch_add(value.data.footprint() - old_footprint,
                    std::memory_order_relaxed);
    bytes_wasted.fetch_add(
        (value.data.footprint() - value.data.size()) -
            (old_footprint - old_size),
        std::memory_order_relaxed);
  }
};

RpEngine::RpEngine(EngineConfig config) : config_(config) {
  const std::size_t shard_count = ShardCountFor(config_);
  const std::size_t shard_buckets = ShardBucketsFor(config_, shard_count);
  max_items_per_shard_ = PerShard(config_.max_items, shard_count);
  max_bytes_per_shard_ = PerShard(config_.max_bytes, shard_count);
  track_eviction_ = config_.max_items != 0 || config_.max_bytes != 0;
  const SlabPolicy slab_policy = SlabPolicyFor(config_, shard_count);
  // With at least one engine alive, the maintenance ticks pump small RCU
  // callback batches inline, so the dedicated reclaimer thread only wakes
  // for deep backlogs (kArmedWakeDepth) — reclamation stops costing a
  // wakeup per grace period under light load.
  rcu::Epoch::Callbacks().ArmInlinePump();
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(this, slab_policy, shard_buckets,
                                              i, shard_count));
  }
  shard_mask_ = shard_count - 1;
}

RpEngine::~RpEngine() {
  // Disarm before the shards (and their ticking workers) go away: with no
  // inline pumpers left, destruction churn drains through the reclaimer
  // thread's normal wake-on-enqueue path.
  rcu::Epoch::Callbacks().DisarmInlinePump();
}

std::uint64_t RpEngine::NextCas(Shard& shard) {
  return shard.next_cas.fetch_add(shard.cas_step, std::memory_order_relaxed);
}

// Shard routing uses the high hash bits; the table's bucket index uses the
// low bits of the same mixed hash, so a shard's keys still spread evenly
// over its buckets.
std::size_t RpEngine::ShardIndex(const std::string& key) const {
  return ShardIndexForHash(Hasher{}(key));
}

bool RpEngine::Get(const std::string& key, StoredValue* out) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  if (config_.hot_key_cache) {
    // Hot-key fast path: a promoted key answers from the seqlock snapshot
    // — no epoch section, no bucket walk, no node dereference. Liveness is
    // re-derived from the snapshot's own expire_at/stored_at against the
    // CURRENT clock and flush deadline, so time- and flush-based death
    // need no invalidation to be observed. Any failure (torn read, tag or
    // key mismatch, dead) falls through to the table walk.
    if (shard.front_active.load(std::memory_order_acquire) != 0) {
      Shard::FrontEntry& entry = shard.front[hash.value & (kFrontWays - 1)];
      if (entry.tag.load(std::memory_order_acquire) == hash.value) {
        FrontSnap snap;
        const bool read_ok = entry.snap.TryReadPrefix(
            &snap, kFrontHeaderBytes, [](const void* header) {
              const auto* s = static_cast<const FrontSnap*>(header);
              return kFrontHeaderBytes + s->key_len + s->value_len;
            });
        if (read_ok && snap.hash == hash.value &&
            snap.key_len == key.size() &&
            std::memcmp(snap.key_bytes(), key.data(), key.size()) == 0 &&
            !IsExpired(snap.expire_at, now) &&
            !IsFlushed(snap.stored_at, flush_at, now)) {
          out->data.assign(snap.value_bytes(), snap.value_len);
          out->flags = snap.flags;
          out->cas = snap.cas;
          out->expire_at = snap.expire_at;
          // The bypass path never touches the table node, so it cannot
          // stamp (or read) its recency/fetched metadata; report the item
          // as recently-fetched, which is what a front hit means. The meta
          // protocol's mg path uses GetManyScratch (table-only), so the
          // l/h flags it reports stay exact.
          out->last_used = now;
          out->fetched = true;
          // One RMW, not two: front hits are folded into get_hits at
          // Stats() time, keeping the bypass path's counter cost at a
          // single uncontended fetch_add.
          shard.front_cache_hits.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
    }
    // Detector accounting only on fall-through: a front hit proves the
    // key is already promoted, and keeping the bypass path free of the
    // stripe counter is part of why it beats the walk. The decayed
    // incumbent is protected by PromoteHotKeys' displacement bar.
    NoteOp(shard, hash.value, key);
  }
  bool dead = false;
  // Fast path: relativistic lookup; value copied inside the read-side
  // critical section, so the node (and its slab chunk) may be reclaimed
  // the instant we return.
  const bool found = shard.table.With(hash, key, [&](const CacheValue& value) {
    if (!IsLive(value, flush_at, now)) {
      dead = true;
      return;
    }
    const std::string_view data = value.data.view();
    out->data.assign(data.data(), data.size());
    out->flags = value.flags;
    out->cas = value.cas;
    out->expire_at = value.expire_at;
    out->last_used = value.last_used.load(std::memory_order_relaxed);
    out->fetched = value.fetched.load(std::memory_order_relaxed);
    // Relaxed recency/fetched stamps feeding the second-chance eviction
    // scan and the meta h flag. These are the only writes a GET performs,
    // and they are per-item, not global.
    value.last_used.store(now, std::memory_order_relaxed);
    value.fetched.store(true, std::memory_order_relaxed);
  });
  if (found && !dead) {
    shard.get_hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (dead) {
    ReclaimDead(shard, hash, key);
  }
  shard.get_misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

template <typename Sink>
void RpEngine::MultiGetImpl(const std::string_view* keys, std::size_t count,
                            Sink&& sink) {
  // Hash every key exactly once up front (the transparent hasher reads
  // the string_views in place — no per-key std::string materializes
  // anywhere on this path). The shard index derives from the hash, so per
  // key only the hash plus a marker byte need storage; batches up to
  // kInlineKeys (the common pipelined multi-get) stay on the stack.
  constexpr std::size_t kInlineKeys = 32;
  constexpr unsigned char kProcessed = 1;
  constexpr unsigned char kDead = 2;
  std::size_t inline_hashes[kInlineKeys];
  unsigned char inline_marks[kInlineKeys];
  std::vector<std::size_t> heap_hashes;
  std::vector<unsigned char> heap_marks;
  std::size_t* hashes = inline_hashes;
  unsigned char* marks = inline_marks;
  if (count > kInlineKeys) {
    heap_hashes.resize(count);
    heap_marks.resize(count);
    hashes = heap_hashes.data();
    marks = heap_marks.data();
  }
  for (std::size_t i = 0; i < count; ++i) {
    hashes[i] = Hasher{}(keys[i]);
    marks[i] = 0;
  }

  const std::int64_t now = NowSeconds();
  bool any_dead = false;
  for (std::size_t i = 0; i < count; ++i) {
    if (marks[i] & kProcessed) {
      continue;  // already answered as part of an earlier shard group
    }
    const std::size_t shard_index = ShardIndexForHash(hashes[i]);
    Shard& shard = *shards_[shard_index];
    const std::int64_t flush_at =
        shard.flush_at.load(std::memory_order_relaxed);
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    {
      // ONE epoch enter/exit for the whole shard group: the guards the
      // nested With() calls open see nesting > 0 and degrade to a local
      // counter bump — no fences, no shared stores.
      rcu::ReadGuard<Shard::Table::domain_type> section;
      for (std::size_t j = i; j < count; ++j) {
        if ((marks[j] & kProcessed) != 0 ||
            ShardIndexForHash(hashes[j]) != shard_index) {
          continue;
        }
        marks[j] |= kProcessed;
        bool hit = false;
        bool dead = false;
        shard.table.With(
            core::Prehashed{hashes[j]}, keys[j],
            [&](const CacheValue& value) {
              if (!IsLive(value, flush_at, now)) {
                dead = true;
                return;
              }
              // Capture the pre-GET recency/fetched metadata (the meta
              // protocol's l and h flags report the state BEFORE this
              // access), then stamp. Plain load+store, not RMW — these are
              // per-item relaxed hints, and GET must not pay an atomic RMW.
              const std::int64_t prior_used =
                  value.last_used.load(std::memory_order_relaxed);
              const bool fetched_before =
                  value.fetched.load(std::memory_order_relaxed);
              value.last_used.store(now, std::memory_order_relaxed);
              value.fetched.store(true, std::memory_order_relaxed);
              sink.OnHit(j, value, prior_used, fetched_before);
              hit = true;
            });
        if (hit) {
          ++hits;
        } else {
          ++misses;
          if (dead) {
            marks[j] |= kDead;
            any_dead = true;
          }
        }
      }
    }
    // Stats batched per group: one shared RMW per counter instead of one
    // per key.
    if (hits != 0) {
      shard.get_hits.fetch_add(hits, std::memory_order_relaxed);
    }
    if (misses != 0) {
      shard.get_misses.fetch_add(misses, std::memory_order_relaxed);
    }
  }

  // Lazy reclamation strictly after every read section has closed:
  // EraseIf blocks on the key's stripe, and a resize holds all stripes
  // while it waits for readers — reclaiming inside a section would
  // deadlock the two against each other.
  if (any_dead) {
    for (std::size_t i = 0; i < count; ++i) {
      if (marks[i] & kDead) {
        ReclaimDead(ShardForHash(hashes[i]), core::Prehashed{hashes[i]},
                    keys[i]);
      }
    }
  }
}

void RpEngine::GetMany(const std::string_view* keys, std::size_t count,
                       MultiGetResult* out) {
  if (count == 0) {
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i].hit = false;
  }
  struct ValueSink {
    MultiGetResult* out;
    void OnHit(std::size_t j, const CacheValue& value, std::int64_t prior_used,
               bool fetched_before) {
      MultiGetResult& slot = out[j];
      const std::string_view data = value.data.view();
      slot.value.data.assign(data.data(), data.size());
      slot.value.flags = value.flags;
      slot.value.cas = value.cas;
      slot.value.expire_at = value.expire_at;
      slot.value.last_used = prior_used;
      slot.value.fetched = fetched_before;
      slot.hit = true;
    }
  };
  MultiGetImpl(keys, count, ValueSink{out});
}

void RpEngine::GetManyScratch(const std::string_view* keys, std::size_t count,
                              ScratchGetResult* out, std::string* scratch) {
  if (count == 0) {
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ScratchGetResult{};
  }
  // Hit payloads append to the caller's scratch string; results carry
  // offsets (not pointers) so scratch may reallocate as the batch grows.
  // The append happens inside the group's read section — the chunk the
  // view points at may be reclaimed the instant the section closes.
  struct ScratchSink {
    ScratchGetResult* out;
    std::string* scratch;
    void OnHit(std::size_t j, const CacheValue& value, std::int64_t prior_used,
               bool fetched_before) {
      ScratchGetResult& slot = out[j];
      const std::string_view data = value.data.view();
      slot.data_offset = scratch->size();
      slot.data_size = data.size();
      scratch->append(data.data(), data.size());
      slot.flags = value.flags;
      slot.cas = value.cas;
      slot.expire_at = value.expire_at;
      slot.last_used = prior_used;
      slot.fetched = fetched_before;
      slot.hit = true;
    }
  };
  MultiGetImpl(keys, count, ScratchSink{out, scratch});
}

bool RpEngine::ReclaimDead(Shard& shard, core::Prehashed hash,
                           std::string_view key) {
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  // Conditional erase: the still-dead re-check, the byte refund and the
  // unlink are atomic under the key's stripe, so a racing Set/Touch that
  // refreshes the TTL can never have its freshly-revived entry reclaimed.
  const bool erased =
      shard.table.EraseIf(hash, key, [&](const CacheValue& value) {
        if (IsLive(value, flush_at, now)) {
          return false;
        }
        shard.RefundValue(key.size(), value);
        return true;
      });
  if (erased) {
    InvalidateFront(shard, hash.value);
    shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
    shard.resize_worker.Nudge();
  }
  return erased;
}

bool RpEngine::OverLimit(const Shard& shard) const {
  return (max_items_per_shard_ != 0 &&
          shard.table.Size() > max_items_per_shard_) ||
         (max_bytes_per_shard_ != 0 &&
          shard.bytes.load(std::memory_order_relaxed) > max_bytes_per_shard_);
}

void RpEngine::EvictLocked(Shard& shard) {
  if (!track_eviction_) {
    return;
  }
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  // Second-chance sweep: live items touched within the last second get one
  // reprieve (re-queued); everything else in FIFO order is evicted. Dead
  // items (expired / overtaken by a flush deadline) are reclaimed on sight
  // regardless of recency.
  std::size_t chances = shard.fifo.size();
  while (OverLimit(shard) && !shard.fifo.empty()) {
    std::string victim = std::move(shard.fifo.front());
    shard.fifo.pop_front();
    bool recently_used = false;
    bool was_dead = false;
    const bool erased = shard.table.EraseIf(victim, [&](const CacheValue& value) {
      was_dead = !IsLive(value, flush_at, now);
      if (!was_dead && chances > 0 &&
          value.last_used.load(std::memory_order_relaxed) >= now) {
        recently_used = true;
        return false;
      }
      shard.RefundValue(victim.size(), value);
      return true;
    });
    if (erased) {
      InvalidateFront(shard, Hasher{}(victim));
      if (was_dead) {
        shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (recently_used) {
      --chances;
      shard.fifo.push_back(std::move(victim));
    }
    // else: stale queue entry (deleted or already evicted) — drop it.
  }
}

void RpEngine::EvictForClassLocked(Shard& shard,
                                   std::size_t needed_footprint) {
  if (!track_eviction_) {
    return;
  }
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  // Class-targeted, no second chance: only victims whose chunk footprint
  // matches the dry class are evicted (their chunks are the only ones the
  // reclaimer drain can hand back to it); wrong-class live items are
  // spared and requeued. Dead items are reclaimed on sight regardless —
  // pool pressure is a fine moment for hygiene.
  std::size_t pops = std::min(shard.fifo.size(), kClassEvictPops);
  std::size_t matches = kClassEvictBatch;
  while (pops-- > 0 && matches > 0 && !shard.fifo.empty()) {
    std::string victim = std::move(shard.fifo.front());
    shard.fifo.pop_front();
    bool was_dead = false;
    bool matched = false;
    bool examined = false;
    const bool erased =
        shard.table.EraseIf(victim, [&](const CacheValue& value) {
          examined = true;
          was_dead = !IsLive(value, flush_at, now);
          matched = value.data.footprint() == needed_footprint;
          if (!was_dead && !matched) {
            return false;  // wrong class: evicting it cannot help
          }
          shard.RefundValue(victim.size(), value);
          return true;
        });
    if (erased) {
      InvalidateFront(shard, Hasher{}(victim));
      if (matched) {
        --matches;
      }
      if (was_dead) {
        shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
      } else {
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (examined) {
      shard.fifo.push_back(std::move(victim));  // spared, keep tracking it
    }
    // else: stale queue entry (deleted or already evicted) — drop it.
  }
}

void RpEngine::MaybeEvict(Shard& shard) {
  if (!track_eviction_ || !OverLimit(shard)) {
    return;
  }
  std::lock_guard<StoreMutex> lock(shard.store_mutex);
  EvictLocked(shard);
}

void RpEngine::EnsureChunkAvailable(Shard& shard, std::size_t data_size) {
  if (data_size == 0 || shard.slab.HasAvailable(data_size)) {
    return;
  }
  // Freed chunks only ever return to their own class: if the arena never
  // carved this class a page, neither eviction nor a reclaimer drain can
  // produce one — go straight to the heap fallback (still charged
  // exactly; the byte-cap sweep keeps total memory bounded).
  if (!shard.slab.HasChunksOf(data_size)) {
    return;
  }
  // The class is dry against the arena cap. Evict a couple of matching
  // victims (under the store mutex — never while holding a stripe), then
  // drain the deferred reclaimer with no locks held so their chunks (and
  // any same-class retirements from ordinary churn) actually return to
  // the pool. Holding no engine lock here is what makes the drain safe:
  // callbacks free chunks into the slab mutex, and the grace period only
  // waits on read-side sections, never on writers.
  {
    std::lock_guard<StoreMutex> lock(shard.store_mutex);
    EvictForClassLocked(shard, shard.slab.FootprintFor(data_size));
  }
  Shard::Table::reclaimer_type::Drain();
}

bool RpEngine::PublishValueLocked(Shard& shard, core::Prehashed hash,
                                  std::string_view key, CacheValue&& value) {
  // A staged (to-be-embedded) payload is not in value.data yet; charge
  // what the embedded region will occupy — by construction exactly the
  // value slab's class footprint for the staged size, so the gauge cannot
  // tell embedded and pooled payloads apart.
  const std::string_view staged = g_staged_payload;
  const std::size_t data_footprint =
      staged.empty() ? value.data.footprint()
                     : shard.slab.FootprintFor(staged.size());
  const std::size_t data_size =
      staged.empty() ? value.data.size() : staged.size();
  const std::size_t new_charge =
      key.size() + data_footprint + kItemOverheadBytes;
  const std::size_t new_waste = data_footprint - data_size;
  // One stripe-atomic insert-or-assign: on a replacement the byte delta
  // against the old value is applied inside the table callback, under the
  // key's stripe, so a concurrent size-changing update of the same key can
  // never skew the gauge — and the old payload is never cloned (the
  // callback sees the ORIGINAL value, so its footprint is the real one).
  const bool inserted = shard.table.InsertOrAssign(
      hash, key, std::move(value), [&](const CacheValue& old) {
        shard.bytes.fetch_add(
            new_charge - ChargedBytes(key.size(), old.data),
            std::memory_order_relaxed);
        shard.bytes_wasted.fetch_add(new_waste - WastedBytes(old.data),
                                     std::memory_order_relaxed);
      });
  if (inserted) {
    shard.bytes.fetch_add(new_charge, std::memory_order_relaxed);
    shard.bytes_wasted.fetch_add(new_waste, std::memory_order_relaxed);
    shard.total_items.fetch_add(1, std::memory_order_relaxed);
    if (track_eviction_) {
      shard.fifo.push_back(std::string(key));
    }
  }
  return inserted;
}

StoreResult RpEngine::Set(const std::string& key, std::string_view data,
                          std::uint32_t flags, std::int64_t exptime) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const std::int64_t now = NowSeconds();
  if (config_.hot_key_cache) {
    NoteOp(shard, hash.value, key);  // SET-hot keys get promoted too
  }
  // Embeddable payloads go straight from the parsed request into the new
  // node's own chunk (staged below — the payload slab is never consulted);
  // larger ones go into a payload slab chunk, TryAllocate-first: the
  // common case (the class has a free chunk) pays one allocator lock
  // instead of a HasAvailable + Allocate pair; only exhaustion or an
  // unpooled size takes the evict-and-drain / heap-fallback slow path.
  // Either way, no owning string is ever allocated for the bytes.
  const bool embed = ShouldEmbedPayload(shard.slab, data.size());
  SlabBuffer payload;
  if (!data.empty() && !embed) {
    if (char* chunk = shard.slab.TryAllocate(data.size())) {
      payload = SlabBuffer::FromChunk(chunk, data);
    } else {
      EnsureChunkAvailable(shard, data.size());
      payload = SlabBuffer(&shard.slab, data);
    }
  }
  CacheValue value(std::move(payload), flags, ResolveExptime(exptime, now),
                   NextCas(shard));
  value.stored_at = now;
  value.last_used.store(now, std::memory_order_relaxed);
  // Capped caches serialize stores on the shard's store mutex so the
  // gauge check and eviction sweep are atomic against the publish.
  // Uncapped caches (no eviction bookkeeping at all) publish lock-free:
  // the insert-or-assign is stripe-atomic, every gauge moves by
  // fetch-add deltas, and there is no FIFO state to guard.
  std::unique_lock<StoreMutex> lock(shard.store_mutex, std::defer_lock);
  if (track_eviction_) {
    lock.lock();
  }
  if (embed) {
    g_staged_payload = data;
  }
  const bool inserted = PublishValueLocked(shard, hash, key, std::move(value));
  InvalidateFront(shard, hash.value);
  EvictLocked(shard);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  if (inserted) {
    shard.resize_worker.Nudge();
  }
  return StoreResult::kStored;
}

StoreResult RpEngine::Add(const std::string& key, std::string_view data,
                          std::uint32_t flags, std::int64_t exptime) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  // Evict-for-class only when the add can actually store (key absent or
  // dead): an add answered NOT_STORED must not evict live data. Advisory
  // and race-tolerant, like the Replace-side gate.
  if (!shard.slab.HasAvailable(data.size()) &&
      !shard.table.Contains(hash, key)) {
    EnsureChunkAvailable(shard, data.size());
  }
  StoreOp op;
  op.kind = StoreKind::kAdd;
  op.key = key;
  op.data = data;
  op.flags = flags;
  op.exptime = exptime;
  const std::int64_t now = NowSeconds();
  bool inserted = false;
  // Same locking rule as Set: store mutex only when eviction bookkeeping
  // exists. The lock-free add is safe because StoreOneLocked's kAdd core
  // answers an insert race with kNotStored instead of assuming the store
  // mutex made Insert infallible.
  std::unique_lock<StoreMutex> lock(shard.store_mutex, std::defer_lock);
  if (track_eviction_) {
    lock.lock();
  }
  const StoreResult result = StoreOneLocked(shard, hash, op, now, &inserted);
  if (result != StoreResult::kStored) {
    return result;
  }
  EvictLocked(shard);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  if (inserted) {
    shard.resize_worker.Nudge();
  }
  return result;
}

// Replace-only-if-live as one conditional per-key update: the liveness
// check and the overwrite are atomic under the stripe, so a concurrent
// DELETE can never be resurrected by a REPLACE that passed a stale check
// (and a replace never inserts, so eviction bookkeeping is untouched).
// The core touches only the stripe locks (safe with or without the store
// mutex held — StoreMany runs it inside its one batch acquisition) and
// leaves `sets` counting and eviction to the caller.
StoreResult RpEngine::ReplaceCore(Shard& shard, core::Prehashed hash,
                                  std::string_view key, std::string_view data,
                                  std::uint32_t flags, std::int64_t exptime,
                                  std::int64_t now) {
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  const std::uint64_t cas = NextCas(shard);
  // The gauge delta must be computed against the ORIGINAL value's
  // footprint (captured in the predicate, which runs on the stored value
  // under the stripe) — the clone handed to the mutate callback sits in a
  // freshly allocated chunk whose footprint can differ from the
  // original's whenever pooled and fallback allocations mix.
  std::size_t old_footprint = 0;
  std::size_t old_size = 0;
  const bool replaced = shard.table.UpdateIf(
      hash, key,
      [&](const CacheValue& value) {
        if (!IsLive(value, flush_at, now)) {
          return false;
        }
        old_footprint = value.data.footprint();
        old_size = value.data.size();
        return true;
      },
      [&](CacheValue& value) {
        // `value` is the writer's private clone: overwriting its buffer
        // in place (or swapping chunks — Assign frees only never-published
        // chunks here) is invisible to readers of the original node.
        value.data.Assign(&shard.slab, data);
        shard.RechargeValue(old_footprint, old_size, value);
        value.flags = flags;
        value.expire_at = ResolveExptime(exptime, now);
        value.cas = cas;
        value.stored_at = now;
        value.last_used.store(now, std::memory_order_relaxed);
      });
  return replaced ? StoreResult::kStored : StoreResult::kNotStored;
}

StoreResult RpEngine::Replace(const std::string& key, std::string_view data,
                              std::uint32_t flags, std::int64_t exptime) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  // Gate the exhaustion slow path on the key being present at all: a
  // replace of a missing key stores nothing, and evicting live items for
  // it would be pure collateral. (Advisory and race-tolerant — liveness
  // is re-checked under the stripe; a wrong guess only means one heap
  // fallback.)
  if (!shard.slab.HasAvailable(data.size()) &&
      shard.table.Contains(hash, key)) {
    EnsureChunkAvailable(shard, data.size());
  }
  const StoreResult result =
      ReplaceCore(shard, hash, key, data, flags, exptime, NowSeconds());
  if (result != StoreResult::kStored) {
    return result;
  }
  InvalidateFront(shard, hash.value);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  MaybeEvict(shard);
  return result;
}

// Append/Prepend are per-key read-modify-writes: the table's striped
// writer lock already makes the clone-mutate-publish atomic against any
// concurrent update of the same key, so no engine-wide lock is needed.
// Dead (expired/flushed) items reject the concatenation — stored_at is
// preserved, so a flushed item can never be revived through its tail.
// Growth past kMaxItemBytes (memcached's item_size_max) is rejected too.
StoreResult RpEngine::ConcatCore(Shard& shard, core::Prehashed hash,
                                 std::string_view key, std::string_view data,
                                 bool prepend, std::int64_t now) {
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  const std::uint64_t cas = NextCas(shard);
  std::size_t old_footprint = 0;  // captured from the original, not the clone
  std::size_t old_size = 0;
  const bool updated = shard.table.UpdateIf(
      hash, key,
      [&](const CacheValue& value) {
        if (!IsLive(value, flush_at, now) ||
            value.data.size() + data.size() > kMaxItemBytes) {
          return false;  // dead, or the result would exceed item_size_max
        }
        old_footprint = value.data.footprint();
        old_size = value.data.size();
        return true;
      },
      [&](CacheValue& value) {
        if (prepend) {
          value.data.Prepend(&shard.slab, data);
        } else {
          value.data.Append(&shard.slab, data);
        }
        shard.RechargeValue(old_footprint, old_size, value);
        value.cas = cas;
      });
  return updated ? StoreResult::kStored : StoreResult::kNotStored;
}

StoreResult RpEngine::Append(const std::string& key, std::string_view data) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const StoreResult result =
      ConcatCore(shard, hash, key, data, /*prepend=*/false, NowSeconds());
  if (result != StoreResult::kStored) {
    return result;
  }
  InvalidateFront(shard, hash.value);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  MaybeEvict(shard);
  return result;
}

StoreResult RpEngine::Prepend(const std::string& key, std::string_view data) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const StoreResult result =
      ConcatCore(shard, hash, key, data, /*prepend=*/true, NowSeconds());
  if (result != StoreResult::kStored) {
    return result;
  }
  InvalidateFront(shard, hash.value);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  MaybeEvict(shard);
  return result;
}

// CAS as one conditional per-key update: the cas comparison and the store
// are atomic under the stripe. A concurrent APPEND/INCR/TOUCH (which bump
// the cas under the same stripe) either lands before the comparison — CAS
// returns kExists — or after the whole CAS; it can never be silently
// overwritten between a passed check and the store.
StoreResult RpEngine::CasCore(Shard& shard, core::Prehashed hash,
                              std::string_view key, std::string_view data,
                              std::uint32_t flags, std::int64_t exptime,
                              std::uint64_t expected_cas, std::int64_t now) {
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  const std::uint64_t cas = NextCas(shard);
  bool live = false;
  bool matched = false;
  std::size_t old_footprint = 0;  // captured from the original, not the clone
  std::size_t old_size = 0;
  shard.table.UpdateIf(
      hash, key,
      [&](const CacheValue& value) {
        if (!IsLive(value, flush_at, now)) {
          return false;
        }
        live = true;
        matched = value.cas == expected_cas;
        if (matched) {
          old_footprint = value.data.footprint();
          old_size = value.data.size();
        }
        return matched;
      },
      [&](CacheValue& value) {
        value.data.Assign(&shard.slab, data);
        shard.RechargeValue(old_footprint, old_size, value);
        value.flags = flags;
        value.expire_at = ResolveExptime(exptime, now);
        value.cas = cas;
        value.stored_at = now;
        value.last_used.store(now, std::memory_order_relaxed);
      });
  if (!live) {
    return StoreResult::kNotFound;
  }
  return matched ? StoreResult::kStored : StoreResult::kExists;
}

StoreResult RpEngine::CheckAndSet(const std::string& key, std::string_view data,
                                  std::uint32_t flags, std::int64_t exptime,
                                  std::uint64_t expected_cas) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  // As in Replace: evict-for-class only when the key exists — a cas that
  // will answer NOT_FOUND (or EXISTS) must not evict live data for a
  // store that never happens.
  if (!shard.slab.HasAvailable(data.size()) &&
      shard.table.Contains(hash, key)) {
    EnsureChunkAvailable(shard, data.size());
  }
  const StoreResult result = CasCore(shard, hash, key, data, flags, exptime,
                                     expected_cas, NowSeconds());
  if (result != StoreResult::kStored) {
    return result;
  }
  InvalidateFront(shard, hash.value);
  shard.sets.fetch_add(1, std::memory_order_relaxed);
  MaybeEvict(shard);
  return result;
}

StoreResult RpEngine::StoreOneLocked(Shard& shard, core::Prehashed hash,
                                     const StoreOp& op, std::int64_t now,
                                     bool* inserted) {
  *inserted = false;
  switch (op.kind) {
    case StoreKind::kSet: {
      // Same staging rule as the singleton Set: embeddable payloads land
      // in the node's own chunk, only larger ones take a payload chunk.
      const bool embed = ShouldEmbedPayload(shard.slab, op.data.size());
      SlabBuffer payload;
      if (!op.data.empty() && !embed) {
        payload = SlabBuffer(&shard.slab, op.data);
      }
      CacheValue value(std::move(payload), op.flags,
                       ResolveExptime(op.exptime, now), NextCas(shard));
      value.stored_at = now;
      value.last_used.store(now, std::memory_order_relaxed);
      if (embed) {
        g_staged_payload = op.data;
      }
      *inserted = PublishValueLocked(shard, hash, op.key, std::move(value));
      InvalidateFront(shard, hash.value);
      return StoreResult::kStored;
    }
    case StoreKind::kAdd: {
      const std::int64_t flush_at =
          shard.flush_at.load(std::memory_order_relaxed);
      CacheValue value(SlabBuffer(&shard.slab, op.data), op.flags,
                       ResolveExptime(op.exptime, now), NextCas(shard));
      value.stored_at = now;
      value.last_used.store(now, std::memory_order_relaxed);
      const std::size_t new_charge = ChargedBytes(op.key.size(), value.data);
      const std::size_t new_waste = WastedBytes(value.data);
      bool live = false;
      std::size_t old_footprint = 0;  // from the original, not the clone
      std::size_t old_size = 0;
      // A dead entry (expired or flushed) may be overwritten in place; the
      // liveness check and the overwrite are atomic under the stripe.
      const bool replaced = shard.table.UpdateIf(
          hash, op.key,
          [&](const CacheValue& old) {
            if (IsLive(old, flush_at, now)) {
              live = true;
              return false;
            }
            old_footprint = old.data.footprint();
            old_size = old.data.size();
            return true;
          },
          [&](CacheValue& old) {
            shard.bytes.fetch_add(
                new_charge -
                    (op.key.size() + old_footprint + kItemOverheadBytes),
                std::memory_order_relaxed);
            shard.bytes_wasted.fetch_add(
                new_waste - (old_footprint - old_size),
                std::memory_order_relaxed);
            old = std::move(value);
            // Overwriting a dead entry is a reclaim plus a fresh link, so
            // the stats match the locked engine's erase-then-insert for the
            // same traffic (add-over-dead is the one store that proves
            // liveness).
            shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
            shard.total_items.fetch_add(1, std::memory_order_relaxed);
          });
      if (live) {
        return StoreResult::kNotStored;
      }
      if (replaced) {
        InvalidateFront(shard, hash.value);
        return StoreResult::kStored;
      }
      if (shard.table.Insert(hash, op.key, std::move(value))) {
        shard.bytes.fetch_add(new_charge, std::memory_order_relaxed);
        shard.bytes_wasted.fetch_add(new_waste, std::memory_order_relaxed);
        shard.total_items.fetch_add(1, std::memory_order_relaxed);
        if (track_eviction_) {
          shard.fifo.push_back(std::string(op.key));
        }
        *inserted = true;
        InvalidateFront(shard, hash.value);
        return StoreResult::kStored;
      }
      // Insert race: a concurrent lock-free add of the same key published
      // first (only possible on an uncapped cache, where adds skip the
      // store mutex). That add stored; this one did not.
      return StoreResult::kNotStored;
    }
    case StoreKind::kReplace:
    case StoreKind::kAppend:
    case StoreKind::kPrepend:
    case StoreKind::kCas: {
      StoreResult result;
      if (op.kind == StoreKind::kReplace) {
        result = ReplaceCore(shard, hash, op.key, op.data, op.flags,
                             op.exptime, now);
      } else if (op.kind == StoreKind::kCas) {
        result = CasCore(shard, hash, op.key, op.data, op.flags, op.exptime,
                         op.cas, now);
      } else {
        result = ConcatCore(shard, hash, op.key, op.data,
                            op.kind == StoreKind::kPrepend, now);
      }
      if (result == StoreResult::kStored) {
        InvalidateFront(shard, hash.value);
      }
      return result;
    }
    case StoreKind::kDelete: {
      // md riding the store batch: Delete()'s conditional erase verbatim
      // (byte refund under the stripe, dead entries reclaimed but answered
      // as a miss), with the resize nudge deferred to the caller's
      // per-group nudge via *inserted (table membership changed). Deletes
      // answer kStored for "deleted" but must NOT count in `sets` — the
      // StoreMany counting loop special-cases them.
      const std::int64_t flush_at =
          shard.flush_at.load(std::memory_order_relaxed);
      bool was_live = false;
      const bool erased =
          shard.table.EraseIf(hash, op.key, [&](const CacheValue& value) {
            was_live = IsLive(value, flush_at, now);
            shard.RefundValue(op.key.size(), value);
            return true;
          });
      if (!erased) {
        return StoreResult::kNotFound;
      }
      InvalidateFront(shard, hash.value);
      *inserted = true;
      if (!was_live) {
        shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
        return StoreResult::kNotFound;
      }
      return StoreResult::kStored;
    }
  }
  return StoreResult::kNotStored;  // unreachable: all kinds handled above
}

void RpEngine::StoreMany(const StoreOp* ops, std::size_t count,
                         StoreResult* results) {
  if (count < 2) {
    CacheEngine::StoreMany(ops, count, results);  // singletons: per-op path
    return;
  }

  // Hash every key exactly once up front; the shard index derives from the
  // hash, mirroring GetMany (and batches up to kInlineOps — the largest
  // burst the connection collects — stay off the heap).
  constexpr std::size_t kInlineOps = 64;
  std::size_t inline_hashes[kInlineOps];
  unsigned char inline_done[kInlineOps];
  unsigned char inline_combined[kInlineOps];
  std::vector<std::size_t> heap_hashes;
  std::vector<unsigned char> heap_done;
  std::vector<unsigned char> heap_combined;
  std::size_t* hashes = inline_hashes;
  unsigned char* done = inline_done;
  unsigned char* combined = inline_combined;
  if (count > kInlineOps) {
    heap_hashes.resize(count);
    heap_done.resize(count);
    heap_combined.resize(count);
    hashes = heap_hashes.data();
    done = heap_done.data();
    combined = heap_combined.data();
  }
  for (std::size_t i = 0; i < count; ++i) {
    hashes[i] = Hasher{}(ops[i].key);
    done[i] = 0;
    combined[i] = 0;
  }

  // Op combining (the hot-key write-side defense): a SET whose NEXT op on
  // the same key within this batch is also a SET is dead work — nothing
  // can observe its value before the later SET overwrites it, because the
  // batch executes under one store-mutex section in request order. Mark it
  // combined: it answers STORED and counts in `sets` (wire semantics
  // identical to per-op execution) but skips the allocation, the table
  // publish and its eviction sweep; the surviving SET performs the one
  // real insert, so total_items and the byte gauge land exactly where
  // per-op execution would leave them. Any intervening op on the key (add,
  // append, cas, ...) disqualifies the pair — its result could depend on
  // the earlier SET having landed. Gated with the front cache: together
  // they are the hot-key defense, and the off state is the ablation
  // baseline.
  if (config_.hot_key_cache) {
    for (std::size_t j = 0; j + 1 < count; ++j) {
      if (ops[j].kind != StoreKind::kSet) {
        continue;
      }
      for (std::size_t k = j + 1; k < count; ++k) {
        if (hashes[k] != hashes[j] || ops[k].key != ops[j].key) {
          continue;
        }
        if (ops[k].kind == StoreKind::kSet) {
          combined[j] = 1;
        }
        break;  // the first later op on the key decides
      }
    }
  }

  const std::int64_t now = NowSeconds();
  for (std::size_t i = 0; i < count; ++i) {
    if (done[i] != 0) {
      continue;  // already executed as part of an earlier shard group
    }
    const std::size_t shard_index = ShardIndexForHash(hashes[i]);
    Shard& shard = *shards_[shard_index];

    // Chunk pre-pass for the whole group, no locks held: find the size
    // classes this group needs that are dry against the arena, deduped by
    // footprint so a burst of same-sized sets checks its class once. Ops
    // that cannot store (add on a present key, replace/cas on a missing
    // one) don't get to trigger eviction — same gating as the per-op
    // paths. All dry classes share ONE eviction sweep under ONE store-
    // mutex acquisition and at most ONE reclaimer pump for the group.
    constexpr std::size_t kMaxClasses = 8;
    std::size_t seen[kMaxClasses];
    std::size_t dry[kMaxClasses];
    std::size_t n_seen = 0;
    std::size_t n_dry = 0;
    for (std::size_t j = i; j < count; ++j) {
      if (done[j] != 0 || combined[j] != 0 ||
          ShardIndexForHash(hashes[j]) != shard_index) {
        continue;  // combined ops never allocate — no class to pre-ensure
      }
      const StoreOp& op = ops[j];
      if (op.data.empty()) {
        continue;
      }
      bool wants = false;
      switch (op.kind) {
        case StoreKind::kSet:
          // Embeddable payloads live inside the node chunk and never
          // consult the payload slab.
          wants = !ShouldEmbedPayload(shard.slab, op.data.size());
          break;
        case StoreKind::kAdd:
          wants = !shard.table.Contains(core::Prehashed{hashes[j]}, op.key);
          break;
        case StoreKind::kReplace:
        case StoreKind::kCas:
          wants = shard.table.Contains(core::Prehashed{hashes[j]}, op.key);
          break;
        default:
          break;  // append/prepend grow through SlabBuffer, never pre-ensure
      }
      if (!wants) {
        continue;
      }
      const std::size_t footprint = shard.slab.FootprintFor(op.data.size());
      bool known = false;
      for (std::size_t k = 0; k < n_seen; ++k) {
        if (seen[k] == footprint) {
          known = true;
          break;
        }
      }
      if (known || n_seen == kMaxClasses) {
        // Overflowing kMaxClasses distinct classes in one burst is
        // pathological; the unchecked ops just risk a (charged, counted)
        // heap fallback.
        continue;
      }
      seen[n_seen++] = footprint;
      if (!shard.slab.HasAvailable(op.data.size()) &&
          shard.slab.HasChunksOf(op.data.size())) {
        dry[n_dry++] = footprint;
      }
    }
    if (n_dry != 0) {
      {
        std::lock_guard<StoreMutex> lock(shard.store_mutex);
        for (std::size_t k = 0; k < n_dry; ++k) {
          EvictForClassLocked(shard, dry[k]);
        }
      }
      Shard::Table::reclaimer_type::Drain();  // the group's one pump
    }

    // Execute the group in request order under AT MOST ONE store-mutex
    // acquisition (stripe locks nest under it exactly as on the per-op
    // paths; uncapped caches take zero, the same rule as the singleton
    // paths), with per-op eviction preserved and the counters batched.
    std::uint64_t stored = 0;
    std::uint64_t combines = 0;
    bool inserted_any = false;
    {
      std::unique_lock<StoreMutex> lock(shard.store_mutex, std::defer_lock);
      if (track_eviction_) {
        lock.lock();
      }
      for (std::size_t j = i; j < count; ++j) {
        if (done[j] != 0 || ShardIndexForHash(hashes[j]) != shard_index) {
          continue;
        }
        done[j] = 1;
        if (combined[j] != 0) {
          // Coalesced into the batch's next SET of the same key: STORED on
          // the wire, zero table/allocator/eviction work here.
          results[j] = StoreResult::kStored;
          ++stored;
          ++combines;
          continue;
        }
        bool inserted = false;
        results[j] = StoreOneLocked(shard, core::Prehashed{hashes[j]}, ops[j],
                                    now, &inserted);
        // kStored from a kDelete means "deleted": no new bytes to evict
        // for, and deletes never count in `sets` (matches the per-op
        // Delete path and the locked engine).
        if (results[j] == StoreResult::kStored &&
            ops[j].kind != StoreKind::kDelete) {
          ++stored;
          EvictLocked(shard);
        }
        inserted_any = inserted_any || inserted;
      }
    }
    if (stored != 0) {
      shard.sets.fetch_add(stored, std::memory_order_relaxed);
    }
    if (combines != 0) {
      shard.set_combines.fetch_add(combines, std::memory_order_relaxed);
    }
    if (inserted_any) {
      shard.resize_worker.Nudge();
    }
  }

  store_batches_.fetch_add(1, std::memory_order_relaxed);
  store_batched_ops_.fetch_add(count, std::memory_order_relaxed);
}

// DELETE is a per-key conditional erase: the byte refund happens under the
// key's stripe, and the eviction queue tolerates stale keys (the sweep
// re-checks presence), so no shard-wide lock is needed. A dead (expired /
// flushed) entry is still physically erased, but answers NOT_FOUND and
// counts as a reclaim — memcached semantics (delete of an expired key is a
// miss), and what the locked engine's lazy-reclaiming find already does.
bool RpEngine::Delete(const std::string& key) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  bool was_live = false;
  const bool erased =
      shard.table.EraseIf(hash, key, [&](const CacheValue& value) {
        was_live = IsLive(value, flush_at, now);
        shard.RefundValue(key.size(), value);
        return true;
      });
  if (!erased) {
    return false;
  }
  InvalidateFront(shard, hash.value);
  shard.resize_worker.Nudge();
  if (!was_live) {
    shard.expired_reclaims.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

// INCR/DECR as one atomic per-key update: parse, bump and re-serialize
// inside the table's conditional clone-and-swing, under that key's stripe.
// A non-numeric or dead value aborts the update — nothing is published
// and nothing goes through reclamation. The predicate distinguishes
// dead (NOT_FOUND on the wire) from non-numeric (CLIENT_ERROR).
ArithResult RpEngine::Arith(const std::string& key, std::uint64_t delta,
                            bool increment) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  const std::uint64_t cas = NextCas(shard);
  ArithStatus status = ArithStatus::kNotFound;  // stays if the key is absent
  std::uint64_t next = 0;
  std::size_t old_footprint = 0;  // captured from the original, not the clone
  std::size_t old_size = 0;
  shard.table.UpdateIf(
      hash, key,
      [&](const CacheValue& value) {
        if (!IsLive(value, flush_at, now)) {
          status = ArithStatus::kNotFound;
          return false;
        }
        std::uint64_t current = 0;
        if (!ParseUint64(value.data.view(), &current)) {
          status = ArithStatus::kNonNumeric;
          return false;
        }
        next = increment ? current + delta
                         : (current >= delta ? current - delta : 0);
        status = ArithStatus::kOk;
        old_footprint = value.data.footprint();
        old_size = value.data.size();
        return true;
      },
      [&](CacheValue& value) {
        char digits[20];
        auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), next);
        (void)ec;  // a uint64 always fits 20 digits
        value.data.Assign(&shard.slab, std::string_view(
                                           digits,
                                           static_cast<std::size_t>(end - digits)));
        shard.RechargeValue(old_footprint, old_size, value);
        value.cas = cas;
      });
  if (status != ArithStatus::kOk) {
    return {status, 0};
  }
  InvalidateFront(shard, hash.value);
  MaybeEvict(shard);  // "9" -> "10" and friends grow the gauge too
  return {ArithStatus::kOk, next};
}

ArithResult RpEngine::Incr(const std::string& key, std::uint64_t delta) {
  return Arith(key, delta, /*increment=*/true);
}

ArithResult RpEngine::Decr(const std::string& key, std::uint64_t delta) {
  return Arith(key, delta, /*increment=*/false);
}

// Dead entries count as absent (as for GET/ADD/REPLACE): touching one
// aborts, so TOUCH can never revive a logically-dead item under a racing
// ADD that already observed it dead.
bool RpEngine::Touch(const std::string& key, std::int64_t exptime) {
  const core::Prehashed hash{Hasher{}(key)};
  Shard& shard = ShardForHash(hash.value);
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  const bool touched = shard.table.UpdateIf(
      hash, key,
      [&](const CacheValue& value) { return IsLive(value, flush_at, now); },
      [&](CacheValue& value) {
        value.expire_at = ResolveExptime(exptime, now);
      });
  if (touched) {
    InvalidateFront(shard, hash.value);
  }
  return touched;
}

// Flush fans out across shards. An immediate flush physically clears each
// shard under its store mutex (Clear syncs on every stripe, so all byte
// deltas from in-flight per-key updates land before the gauge resets). A
// delayed flush just arms each shard's deadline; items die logically when
// it passes and are reclaimed lazily (GET path, eviction sweep). The
// cleared nodes' slab chunks flow back through deferred reclamation —
// readers mid-section keep seeing valid data.
void RpEngine::FlushAll(std::int64_t delay_seconds) {
  const std::int64_t now = NowSeconds();
  if (delay_seconds > 0) {
    // The delay follows the protocol's exptime conventions (<= 30 days is
    // relative, larger is an absolute unix time) — which also keeps a
    // wire-supplied huge value from overflowing `now + delay`.
    const std::int64_t at = ResolveExptime(delay_seconds, now);
    for (auto& shard : shards_) {
      shard->flush_at.store(at, std::memory_order_relaxed);
      // Front snapshots carry stored_at, so GETs observe the new deadline
      // through IsFlushed without this — but invalidating keeps the "every
      // mutation invalidates" rule unconditional, which is what the
      // conformance matrix pins.
      InvalidateAllFront(*shard);
    }
    return;
  }
  for (auto& shard : shards_) {
    std::lock_guard<StoreMutex> lock(shard->store_mutex);
    // Refund gauges per cleared node instead of resetting them: on an
    // uncapped cache, stores run lock-free past the store mutex, so a
    // concurrent SET that already passed its stripe may apply its charge
    // after this flush — an absolute reset would strand that delta
    // forever, while per-node refunds compose with it exactly.
    shard->table.Clear([&shard](const ItemKey& key, const CacheValue& value) {
      shard->RefundValue(key.size, value);
    });
    shard->fifo.clear();
    shard->flush_at.store(kNoFlush, std::memory_order_relaxed);
    InvalidateAllFront(*shard);
  }
}

// -- Maintenance plane ----------------------------------------------------
//
// One tick per shard, piggybacked on the shard's resize-worker wakeup (and
// runnable synchronously through RunMaintenanceTick). The tick hosts the
// three cooperating optimizers: hot-key promotion, slab automove, and the
// expired-item crawl + inline reclaimer pump.

void RpEngine::RunMaintenanceTick(std::size_t shard_index) {
  MaintenanceTick(*shards_[shard_index]);
}

void RpEngine::MaintenanceTick(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.tick_mu);
  if (config_.hot_key_cache) {
    PromoteHotKeys(shard);
  }
  AutomoveTick(shard);
  CrawlerTick(shard);
  // Pump a small pending callback batch inline: under light load the
  // shard ticks absorb reclamation entirely and the dedicated reclaimer
  // thread never wakes (its wake threshold is kArmedWakeDepth while
  // pumpers are armed).
  rcu::Epoch::Callbacks().TryPump(kTickPumpMax);
}

void RpEngine::NoteOp(Shard& shard, std::size_t hash, std::string_view key) {
  // Lossy per-stripe counter: plain load+store on purpose — losing an
  // increment under a race costs detection latency, never correctness.
  std::atomic<std::uint32_t>& counter =
      shard.op_counts[(hash >> 20) & (kStripeCounters - 1)];
  const std::uint32_t n =
      counter.load(std::memory_order_relaxed) + 1;
  counter.store(n, std::memory_order_relaxed);
  if ((n & (kDetectorSample - 1)) != 0) {
    return;
  }
  // Sampled op: feed the space-saving candidate table. try_lock only —
  // the hot path never waits on the detector.
  std::unique_lock<std::mutex> lock(shard.cand_mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    return;
  }
  Shard::Candidate* empty = nullptr;
  Shard::Candidate* min = &shard.cands[0];
  for (Shard::Candidate& cand : shard.cands) {
    if (cand.count != 0 && cand.hash == hash && cand.key == key) {
      ++cand.count;
      return;
    }
    if (cand.count == 0) {
      empty = &cand;
    }
    if (cand.count < min->count) {
      min = &cand;
    }
  }
  if (empty != nullptr) {
    empty->hash = hash;
    empty->key.assign(key.data(), key.size());
    empty->count = 1;
    return;
  }
  // Space-saving eviction: decay the coldest slot; replace it once drained.
  if (--min->count == 0) {
    min->hash = hash;
    min->key.assign(key.data(), key.size());
    min->count = 1;
  }
}

void RpEngine::InvalidateFront(Shard& shard, std::size_t hash) {
  // Pairs with PublishFrontWay's fence (store-buffering resolution): under
  // seq_cst either the publisher's front_inflight increment is visible
  // here, or this mutation's table commit is visible to the publisher's
  // table read — never neither. A cold front cache exits after two relaxed
  // loads.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.front_active.load(std::memory_order_relaxed) == 0 &&
      shard.front_inflight.load(std::memory_order_relaxed) == 0) {
    return;
  }
  Shard::FrontEntry& entry = shard.front[hash & (kFrontWays - 1)];
  std::lock_guard<std::mutex> lock(entry.write_mu);
  // Any in-flight promotion that read the table before this mutation
  // committed sees a changed generation and discards its snapshot.
  entry.inval_gen.fetch_add(1, std::memory_order_release);
  if (entry.tag.load(std::memory_order_relaxed) == hash) {
    entry.tag.store(0, std::memory_order_release);
    shard.front_active.fetch_sub(1, std::memory_order_relaxed);
  }
}

void RpEngine::InvalidateAllFront(Shard& shard) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.front_active.load(std::memory_order_relaxed) == 0 &&
      shard.front_inflight.load(std::memory_order_relaxed) == 0) {
    return;
  }
  for (Shard::FrontEntry& entry : shard.front) {
    std::lock_guard<std::mutex> lock(entry.write_mu);
    entry.inval_gen.fetch_add(1, std::memory_order_release);
    if (entry.tag.load(std::memory_order_relaxed) != 0) {
      entry.tag.store(0, std::memory_order_release);
      shard.front_active.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

bool RpEngine::PublishFrontWay(Shard& shard, std::size_t way) {
  const std::string& key = shard.front_keys[way];
  const std::size_t hash = shard.front_hashes[way];
  Shard::FrontEntry& entry = shard.front[way];
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  // Promotion window open: mutations committing from here on either see
  // the inflight count (and bump inval_gen) or their commit is visible to
  // the With() read below — the seq_cst fences on both sides exclude the
  // stale-publish interleaving.
  shard.front_inflight.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::uint64_t gen = entry.inval_gen.load(std::memory_order_acquire);
  FrontSnap snap;
  bool live = false;
  shard.table.With(core::Prehashed{hash}, key, [&](const CacheValue& value) {
    const std::string_view data = value.data.view();
    if (!IsLive(value, flush_at, now) || data.size() > kEmbedMaxData ||
        key.size() > kFrontMaxKey) {
      return;
    }
    snap.hash = hash;
    snap.cas = value.cas;
    snap.expire_at = value.expire_at;
    snap.stored_at = value.stored_at;
    snap.flags = value.flags;
    snap.key_len = static_cast<std::uint16_t>(key.size());
    snap.value_len = static_cast<std::uint16_t>(data.size());
    std::memcpy(snap.bytes, key.data(), key.size());
    if (!data.empty()) {
      std::memcpy(snap.bytes + key.size(), data.data(), data.size());
    }
    // Front hits bypass the table walk and its recency stamp; refresh it
    // here every tick so the second-chance eviction sweep cannot mistake
    // the shard's hottest item for a cold one.
    value.last_used.store(now, std::memory_order_relaxed);
    live = true;
  });
  bool keep = true;
  {
    std::lock_guard<std::mutex> lock(entry.write_mu);
    const bool was_active = entry.tag.load(std::memory_order_relaxed) != 0;
    if (!live) {
      // Key gone, dead, or too large to snapshot: demote the way.
      if (was_active) {
        entry.tag.store(0, std::memory_order_release);
        shard.front_active.fetch_sub(1, std::memory_order_relaxed);
      }
      keep = false;
    } else if (entry.inval_gen.load(std::memory_order_relaxed) == gen) {
      entry.snap.Write(&snap,
                       kFrontHeaderBytes + snap.key_len + snap.value_len);
      if (!was_active) {
        shard.front_active.fetch_add(1, std::memory_order_relaxed);
        shard.hot_key_promotions.fetch_add(1, std::memory_order_relaxed);
      }
      entry.tag.store(hash, std::memory_order_release);
    }
    // else: a mutation raced the snapshot — leave the way as the
    // invalidator left it; the key stays claimed and next tick retries.
  }
  shard.front_inflight.fetch_sub(1, std::memory_order_relaxed);
  return keep;
}

void RpEngine::PromoteHotKeys(Shard& shard) {
  // Harvest promotable candidates and decay everything: a key must keep
  // re-earning its heat, so yesterday's hot key drains out of the table
  // within a few ticks of going cold.
  struct Hot {
    std::size_t hash = 0;
    std::uint32_t count = 0;
    std::string key;  // copied under cand_mu — NoteOp mutates cands freely
  };
  Hot hot[kCandidates];
  std::size_t n_hot = 0;
  {
    std::lock_guard<std::mutex> lock(shard.cand_mu);
    for (Shard::Candidate& cand : shard.cands) {
      if (cand.count >= kPromoteThreshold) {
        hot[n_hot].hash = cand.hash;
        hot[n_hot].count = cand.count;
        hot[n_hot].key = cand.key;
        ++n_hot;
      }
      cand.count /= 2;
    }
  }
  std::sort(hot, hot + n_hot,
            [](const Hot& a, const Hot& b) { return a.count > b.count; });
  // Hottest-first way claims (way = hash & mask, same mapping as GET).
  bool claimed[kFrontWays] = {};
  for (std::size_t i = 0; i < n_hot; ++i) {
    const std::size_t way = hot[i].hash & (kFrontWays - 1);
    if (claimed[way]) {
      continue;  // a hotter key already owns the way this tick
    }
    claimed[way] = true;
    if (shard.front_keys[way] != hot[i].key) {
      // A promoted key's front hits bypass NoteOp (the bypass is the whole
      // point), so an incumbent's candidate count decays to zero while it
      // is hottest of all. Displacing it must therefore clear a higher bar
      // than first promotion — otherwise any barely-warm way collision
      // steals the way and thrashes the shard's hottest key.
      if (!shard.front_keys[way].empty() &&
          hot[i].count < 2 * kPromoteThreshold) {
        continue;
      }
      // Displacing the previous owner: clear its published entry first so
      // the tag can never point at a snapshot of a different key.
      InvalidateFront(shard, shard.front_hashes[way]);
      shard.front_keys[way].assign(hot[i].key.data(), hot[i].key.size());
      shard.front_hashes[way] = hot[i].hash;
    }
  }
  // (Re)publish every claimed way — refresh keeps promoted SET-hot keys
  // serving their latest value within one tick of invalidation.
  for (std::size_t way = 0; way < kFrontWays; ++way) {
    if (shard.front_keys[way].empty()) {
      continue;
    }
    if (!PublishFrontWay(shard, way)) {
      shard.front_keys[way].clear();
      shard.front_hashes[way] = 0;
    }
  }
}

void RpEngine::AutomoveTick(Shard& shard) {
  const std::size_t classes = shard.slab.ClassCount();
  if (classes == 0) {
    return;
  }
  if (shard.automove_seen.size() != classes) {
    shard.automove_seen.assign(classes, 0);
  }
  // Steering signal: the class whose exhaustion count grew most since the
  // last tick is the one starving NOW (cumulative counts would keep
  // chasing yesterday's pressure).
  std::size_t best = classes;
  std::uint64_t best_delta = 0;
  for (std::size_t cls = 0; cls < classes; ++cls) {
    const std::uint64_t total = shard.slab.ExhaustedByClass(cls);
    const std::uint64_t delta = total - shard.automove_seen[cls];
    shard.automove_seen[cls] = total;
    if (delta > best_delta) {
      best_delta = delta;
      best = cls;
    }
  }
  if (best < classes) {
    // At most one page per tick: a calcified arena recovers over a few
    // ticks instead of thrashing pages between two starving classes.
    shard.slab.TryReassignPage(best);
  }
}

void RpEngine::CrawlerTick(Shard& shard) {
  const std::int64_t now = NowSeconds();
  const std::int64_t flush_at = shard.flush_at.load(std::memory_order_relaxed);
  // Walk a few buckets per tick collecting dead keys (key bytes copied out
  // — the node may be reclaimed the moment the section closes), then
  // erase them OUTSIDE the read section: EraseIf takes stripe locks, and a
  // resize holds all stripes while waiting for readers.
  std::string dead[kCrawlReclaimMax];
  std::size_t n_dead = 0;
  const std::size_t begin = shard.crawl_cursor;
  const std::size_t buckets = shard.table.ForEachInBuckets(
      begin, kCrawlBuckets, [&](const ItemKey& key, const CacheValue& value) {
        if (n_dead < kCrawlReclaimMax && !IsLive(value, flush_at, now)) {
          dead[n_dead++].assign(key.data, key.size);
        }
      });
  shard.crawl_cursor =
      begin % buckets + kCrawlBuckets >= buckets ? 0 : begin % buckets + kCrawlBuckets;
  for (std::size_t i = 0; i < n_dead; ++i) {
    if (ReclaimDead(shard, core::Prehashed{Hasher{}(dead[i])}, dead[i])) {
      shard.crawler_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t RpEngine::ItemCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->table.Size();
  }
  return total;
}

std::size_t RpEngine::BucketCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->table.BucketCount();
  }
  return total;
}

std::size_t RpEngine::EvictionQueueDepth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<StoreMutex> lock(shard->store_mutex);
    total += shard->fifo.size();
  }
  return total;
}

EngineStats RpEngine::Stats() const {
  EngineStats stats;
  stats.limit_maxbytes = config_.max_bytes;
  stats.store_batches = store_batches_.load(std::memory_order_relaxed);
  stats.store_batched_ops =
      store_batched_ops_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    // get_hits counts every served GET; front-cache hits bump only their
    // own counter on the hot path and are folded in here.
    stats.get_hits += shard->get_hits.load(std::memory_order_relaxed) +
                      shard->front_cache_hits.load(std::memory_order_relaxed);
    stats.get_misses += shard->get_misses.load(std::memory_order_relaxed);
    stats.sets += shard->sets.load(std::memory_order_relaxed);
    stats.evictions += shard->evictions.load(std::memory_order_relaxed);
    stats.expired_reclaims +=
        shard->expired_reclaims.load(std::memory_order_relaxed);
    stats.total_items += shard->total_items.load(std::memory_order_relaxed);
    stats.bytes += shard->bytes.load(std::memory_order_relaxed);
    stats.bytes_wasted += shard->bytes_wasted.load(std::memory_order_relaxed);
    stats.items += shard->table.Size();
    stats.hot_key_promotions +=
        shard->hot_key_promotions.load(std::memory_order_relaxed);
    stats.front_cache_hits +=
        shard->front_cache_hits.load(std::memory_order_relaxed);
    stats.set_combines += shard->set_combines.load(std::memory_order_relaxed);
    stats.crawler_reclaims +=
        shard->crawler_reclaims.load(std::memory_order_relaxed);
    const SlabStats slab = shard->slab.Stats();
    stats.slab_reserved += slab.bytes_reserved;
    stats.slab_fallbacks += slab.fallback_allocs;
    stats.slab_pages_moved += slab.pages_moved;
    // The combined-item node slab is real reserved memory too; its arena
    // is uncapped, so fallbacks only ever come from node+key sizes beyond
    // its chunk_max (impossible through the protocol's 250-byte key cap).
    const SlabStats nodes = shard->node_slab.Stats();
    stats.slab_reserved += nodes.bytes_reserved;
    stats.slab_fallbacks += nodes.fallback_allocs;
    stats.slab_pages_moved += nodes.pages_moved;
  }
  // Reclaimer health is process-global (one RCU domain, one callback
  // queue): both engines report the same numbers by design.
  rcu::RcuCallbackQueue& reclaimer = rcu::Epoch::Callbacks();
  stats.reclaimer_pending = reclaimer.pending();
  stats.reclaimer_wakeups = reclaimer.wakeups();
  stats.reclaimer_inline_pumps = reclaimer.inline_pumps();
  FillMetaCommandStats(&stats);
  return stats;
}

}  // namespace rp::memcache
