#include "src/memcache/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rp::memcache {

std::string ExecuteRequest(CacheEngine& engine, const Request& request,
                           bool* quit) {
  *quit = false;
  std::string response;
  switch (request.op) {
    case Op::kGet:
    case Op::kGets: {
      const bool with_cas = request.op == Op::kGets;
      StoredValue value;
      for (const std::string& key : request.keys) {
        if (engine.Get(key, &value)) {
          response += FormatValue(key, value, with_cas);
        }
      }
      response += FormatEnd();
      return response;
    }
    case Op::kSet:
      engine.Set(request.keys[0], request.data, request.flags, request.exptime);
      response = FormatStored();
      break;
    case Op::kAdd:
      response = engine.Add(request.keys[0], request.data, request.flags,
                            request.exptime) == StoreResult::kStored
                     ? FormatStored()
                     : FormatNotStored();
      break;
    case Op::kReplace:
      response = engine.Replace(request.keys[0], request.data, request.flags,
                                request.exptime) == StoreResult::kStored
                     ? FormatStored()
                     : FormatNotStored();
      break;
    case Op::kAppend:
      response = engine.Append(request.keys[0], request.data) == StoreResult::kStored
                     ? FormatStored()
                     : FormatNotStored();
      break;
    case Op::kPrepend:
      response = engine.Prepend(request.keys[0], request.data) == StoreResult::kStored
                     ? FormatStored()
                     : FormatNotStored();
      break;
    case Op::kCas:
      switch (engine.CheckAndSet(request.keys[0], request.data, request.flags,
                                 request.exptime, request.cas)) {
        case StoreResult::kStored:
          response = FormatStored();
          break;
        case StoreResult::kExists:
          response = FormatExists();
          break;
        default:
          response = FormatNotFound();
          break;
      }
      break;
    case Op::kDelete:
      response = engine.Delete(request.keys[0]) ? FormatDeleted() : FormatNotFound();
      break;
    case Op::kIncr: {
      const auto result = engine.Incr(request.keys[0], request.delta);
      response = result.has_value() ? FormatNumber(*result) : FormatNotFound();
      break;
    }
    case Op::kDecr: {
      const auto result = engine.Decr(request.keys[0], request.delta);
      response = result.has_value() ? FormatNumber(*result) : FormatNotFound();
      break;
    }
    case Op::kTouch:
      response = engine.Touch(request.keys[0], request.exptime) ? FormatTouched()
                                                                : FormatNotFound();
      break;
    case Op::kFlushAll:
      engine.FlushAll();
      response = FormatOk();
      break;
    case Op::kVersion:
      return FormatVersion("rp-memcache 1.0");
    case Op::kStats: {
      const EngineStats stats = engine.Stats();
      response += "STAT engine " + std::string(engine.Name()) + "\r\n";
      response += "STAT get_hits " + std::to_string(stats.get_hits) + "\r\n";
      response += "STAT get_misses " + std::to_string(stats.get_misses) + "\r\n";
      response += "STAT cmd_set " + std::to_string(stats.sets) + "\r\n";
      response += "STAT evictions " + std::to_string(stats.evictions) + "\r\n";
      response += "STAT expired_unfetched " +
                  std::to_string(stats.expired_reclaims) + "\r\n";
      response += "STAT curr_items " + std::to_string(stats.items) + "\r\n";
      response += FormatEnd();
      return response;
    }
    case Op::kQuit:
      *quit = true;
      return "";
  }
  return request.noreply ? "" : response;
}

Server::Server(CacheEngine& engine, std::uint16_t port)
    : engine_(engine), port_(port) {}

Server::~Server() { Stop(); }

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    error_ = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void Server::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers.swap(workers_);
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  listen_fd_ = -1;
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  RequestParser parser;
  char buf[16 * 1024];
  bool quit = false;
  while (!quit && !stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    parser.Feed(std::string_view(buf, static_cast<std::size_t>(n)));

    std::string out;
    for (;;) {
      Request request;
      const ParseStatus status = parser.Next(&request);
      if (status == ParseStatus::kNeedMore) {
        break;
      }
      if (status == ParseStatus::kError) {
        out += FormatClientError(parser.error_message());
        continue;
      }
      out += ExecuteRequest(engine_, request, &quit);
      if (quit) {
        break;
      }
    }
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t w = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        quit = true;
        break;
      }
      sent += static_cast<std::size_t>(w);
    }
  }
  ::close(fd);
}

}  // namespace rp::memcache
