#include "src/memcache/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

namespace rp::memcache {

namespace {

constexpr std::string_view kTooManyConnections =
    "SERVER_ERROR too many open connections\r\n";

}  // namespace

Server::Server(CacheEngine& engine, std::uint16_t port, ServerOptions options)
    : owned_handler_(std::make_unique<EngineHandler>(engine)),
      handler_(owned_handler_.get()),
      port_(port),
      options_(options) {}

Server::Server(RequestHandler& handler, std::uint16_t port,
               ServerOptions options)
    : handler_(&handler), port_(port), options_(options) {}

Server::~Server() { Stop(); }

bool Server::FailStart(const std::string& what) {
  error_ = what + ": " + std::strerror(errno);
  for (auto& worker : workers_) {
    if (worker->epoll_fd >= 0) {
      ::close(worker->epoll_fd);
    }
    if (worker->wake_fd >= 0) {
      ::close(worker->wake_fd);
    }
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return false;
}

bool Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return FailStart("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    return FailStart("bind/listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  const std::size_t num_workers = std::max<std::size_t>(1, options_.num_workers);
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    workers_.push_back(std::move(worker));
    Worker& w = *workers_.back();
    if (w.epoll_fd < 0 || w.wake_fd < 0) {
      return FailStart("epoll_create1/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w.wake_fd;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, w.wake_fd, &ev) < 0) {
      return FailStart("epoll_ctl(wake)");
    }
    // EPOLLEXCLUSIVE: the kernel wakes one worker per accept burst instead
    // of thundering all of them; each worker accepts on its own.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(w.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      return FailStart("epoll_ctl(listen)");
    }
  }
  stopping_.store(false, std::memory_order_release);
  for (auto& worker : workers_) {
    Worker& w = *worker;
    w.thread = std::thread([this, &w] { WorkerLoop(w); });
  }
  started_ = true;
  return true;
}

void Server::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  stopping_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    const std::uint64_t one = 1;
    // A failed write (impossible for a fresh eventfd) would only delay the
    // worker until its next epoll timeout; ignore it.
    (void)!::write(worker->wake_fd, &one, sizeof(one));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    // The worker cleared its connections on exit; release its fds here.
    ::close(worker->wake_fd);
    ::close(worker->epoll_fd);
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::WorkerLoop(Worker& worker) {
  std::array<epoll_event, 64> events;
  // With idle eviction on, cap the wait so sweeps happen even on a quiet
  // loop; otherwise sleep until an event or a Stop() wakeup.
  const int wait_ms =
      options_.idle_timeout.count() > 0
          ? static_cast<int>(std::max<std::int64_t>(
                1, options_.idle_timeout.count() / 4))
          : -1;
  while (!stopping_.load(std::memory_order_acquire)) {
    int timeout = wait_ms;
    if (worker.relisten_at_ms != 0) {
      const std::int64_t now = MonotonicMs();
      if (now >= worker.relisten_at_ms) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLEXCLUSIVE;
        ev.data.fd = listen_fd_;
        if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
          worker.relisten_at_ms = 0;
        }
      }
      if (worker.relisten_at_ms != 0) {
        const int until = static_cast<int>(worker.relisten_at_ms - MonotonicMs());
        timeout = timeout < 0 ? std::max(1, until)
                              : std::min(timeout, std::max(1, until));
      }
    }
    const int n =
        ::epoll_wait(worker.epoll_fd, events.data(), events.size(), timeout);
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == worker.wake_fd) {
        std::uint64_t drain = 0;
        (void)!::read(worker.wake_fd, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady(worker);
        continue;
      }
      auto it = worker.connections.find(fd);
      if (it == worker.connections.end()) {
        continue;  // closed earlier in this same batch
      }
      Connection& conn = *it->second;
      bool alive = true;
      if (events[i].events & EPOLLERR) {
        alive = false;
      } else {
        if (events[i].events & EPOLLOUT) {
          alive = conn.OnWritable();
        }
        if (alive && (events[i].events & (EPOLLIN | EPOLLHUP))) {
          alive = conn.OnReadable();
        }
      }
      if (!alive) {
        worker.connections.erase(it);  // dtor closes fd, drops the gauge
      } else {
        UpdateInterest(worker, conn);
      }
    }
    if (options_.idle_timeout.count() > 0) {
      SweepIdle(worker);
    }
  }
  // Graceful shutdown: closing each connection here, on the owning thread,
  // keeps the single-threaded ownership invariant to the very end.
  worker.connections.clear();
}

void Server::AcceptReady(Worker& worker) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // backlog drained (or another EPOLLEXCLUSIVE worker won)
      }
      // EMFILE/ENFILE and friends: accepting is impossible right now, and
      // with a level-triggered listen event an immediate retry would spin
      // this loop at 100% CPU. Mute the listen fd in this worker's epoll
      // and re-arm it shortly; other workers (and the backlog) carry on.
      ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      worker.relisten_at_ms = MonotonicMs() + 50;
      return;
    }
    // Claim a slot first, then check: a load-then-increment would let
    // concurrent AcceptReady calls on different workers both pass the
    // check and overshoot the server-wide cap.
    const std::uint64_t live =
        counters_.current.fetch_add(1, std::memory_order_relaxed) + 1;
    if (live > options_.max_connections) {
      counters_.current.fetch_sub(1, std::memory_order_relaxed);
      // Over the cap: best-effort error, then close. The socket never
      // enters an event loop, so a connect flood can't grow state.
      (void)!::send(fd, kTooManyConnections.data(), kTooManyConnections.size(),
                    MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    counters_.total.fetch_add(1, std::memory_order_relaxed);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(
        fd, *handler_, options_.write_high_water, &counters_);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      continue;  // conn dtor closes the fd and restores the gauge
    }
    conn->set_registered_events(EPOLLIN);
    worker.connections.emplace(fd, std::move(conn));
  }
}

void Server::UpdateInterest(Worker& worker, Connection& conn) {
  const std::uint32_t want = (conn.wants_read() ? EPOLLIN : 0u) |
                             (conn.wants_write() ? EPOLLOUT : 0u);
  if (want == conn.registered_events()) {
    return;
  }
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd();
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd(), &ev) == 0) {
    conn.set_registered_events(want);
  }
}

void Server::SweepIdle(Worker& worker) {
  const std::int64_t now = MonotonicMs();
  if (now < worker.next_sweep_ms) {
    return;  // busy loops return from epoll_wait constantly; sweep at most
             // once per wait interval, not once per event batch
  }
  worker.next_sweep_ms =
      now + std::max<std::int64_t>(1, options_.idle_timeout.count() / 4);
  const std::int64_t limit = options_.idle_timeout.count();
  for (auto it = worker.connections.begin();
       it != worker.connections.end();) {
    if (now - it->second->last_active_ms() >= limit) {
      it = worker.connections.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rp::memcache
