// Per-shard slab allocation for cache payloads (memcached's slab classes).
//
// Why: the engines previously heap-allocated a std::string per stored value
// — one malloc/free round trip per SET on the hottest write path, and a
// byte gauge that charged a *modelled* key+data+64 constant rather than
// what the allocator actually handed out. A slab allocator kills both: it
// carves geometric size-class chunks out of large pages owned by the
// shard, so a steady-state SET recycles a chunk instead of calling the
// heap, and the chunk size is a known quantity the byte gauge can charge
// exactly (internal fragmentation included, reported as `bytes_wasted`).
//
// Reclamation discipline (the part memcached does not have to solve): the
// relativistic engine's readers copy values inside an epoch read-side
// critical section with no locks held, so a chunk must never be recycled
// while a reader may still dereference it. Chunk lifetime is therefore
// tied to value lifetime: a SlabBuffer frees its chunk only from its
// destructor, and the RP engine's values die inside table nodes retired
// through the DeferredReclaimer — i.e. strictly after a grace period.
// A freed chunk re-enters the free list only once no read-side critical
// section that could have observed it remains open. Buffers that were
// never published (clones being built under a stripe lock) may free
// immediately; nobody else ever saw them.
//
// Exhaustion policy: TryAllocate returns nullptr when a size class is dry
// and the arena cap (EngineConfig::max_bytes / shards) forbids another
// page — the engine reacts by evicting for that class and draining the
// deferred reclaimer so retired chunks actually come back. Allocate()
// falls back to a tracked exact-size heap allocation when the pool stays
// dry (deferred frees mean eviction cannot synchronously produce a chunk),
// so the cache keeps serving; fallbacks are counted and still charged
// exactly. Values larger than `chunk_max` always take the fallback path
// (memcached similarly special-cases large items).
#ifndef RP_MEMCACHE_SLAB_H_
#define RP_MEMCACHE_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string_view>
#include <vector>

namespace rp::memcache {

// Size-class geometry and arena budget. The defaults mirror memcached's
// shape: classes grow geometrically (`growth`, memcached -f) from
// `chunk_min` up to `chunk_max`, pages of `page_bytes` are carved into
// chunks of one class, and `arena_bytes` caps total page memory
// (0 = uncapped). `chunk_max = 0` disables pooling entirely: every
// allocation is an exact-size tracked heap block — the per-item-malloc
// baseline the abl12 bench compares against.
struct SlabPolicy {
  double growth = 1.25;
  std::size_t chunk_min = 16;
  std::size_t chunk_max = 8 * 1024;
  std::size_t page_bytes = 64 * 1024;
  std::size_t arena_bytes = 0;
};

// Gauges and counters an allocator exposes to the engine `stats` plumbing.
struct SlabStats {
  std::uint64_t bytes_reserved = 0;   // page bytes carved from the heap
  std::uint64_t chunks_in_use = 0;    // slab chunks currently handed out
  std::uint64_t fallback_bytes = 0;   // live tracked heap-fallback bytes
  std::uint64_t fallback_allocs = 0;  // cumulative fallback allocations
  std::uint64_t class_exhausted = 0;  // cumulative dry-pool TryAllocate calls
  std::uint64_t pages_moved = 0;      // pages reassigned across classes
};

// Every allocation (slab chunk or heap fallback) is preceded by a 16-byte
// header recording its owner and capacity, so freeing and footprint
// queries need only the payload pointer — values carry no allocator back
// reference of their own.
class SlabAllocator {
 public:
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::uint32_t kFallbackClass = 0xFFFFFFFFu;
  // Marks a buffer embedded inside ANOTHER allocation (the combined item
  // layout places value bytes in the trailing region of the table node's
  // chunk). Footprint/capacity queries work off the header as usual;
  // Free() is a no-op — the enclosing allocation owns the bytes and is
  // freed as a whole.
  static constexpr std::uint32_t kEmbeddedClass = 0xFFFFFFFEu;
  // Chunk capacities are 8-byte multiples so every chunk start (and the
  // intrusive free-list pointer stored in the payload) stays aligned.
  static constexpr std::size_t kChunkAlign = 8;

  // The 16 bytes preceding every payload. `owner` is null for untracked
  // heap blocks; `cls` is kFallbackClass for any non-pooled allocation.
  struct Header {
    SlabAllocator* owner;
    std::uint32_t capacity;
    std::uint32_t cls;
  };

  static Header* HeaderOf(char* payload) {
    return reinterpret_cast<Header*>(payload - kHeaderBytes);
  }
  static const Header* HeaderOf(const char* payload) {
    return reinterpret_cast<const Header*>(payload - kHeaderBytes);
  }

  // Stamps `payload` (a region inside another allocation, preceded by
  // kHeaderBytes of reserved space) as an embedded sub-buffer of capacity
  // `capacity`. Footprint/capacity queries behave like a pooled chunk;
  // Free() on it is a no-op. `owner` is recorded so copies of the buffer
  // (which allocate a chunk of their own) draw from the same pool and
  // land in the same size class — byte accounting stays history-free.
  static void StampEmbedded(char* payload, std::size_t capacity,
                            SlabAllocator* owner) {
    *HeaderOf(payload) =
        Header{owner, static_cast<std::uint32_t>(capacity), kEmbeddedClass};
  }

  explicit SlabAllocator(SlabPolicy policy = {});
  ~SlabAllocator();

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  // Slab-pool-only allocation: returns nullptr when `size` has no pooled
  // class (pooling disabled or size > chunk_max) or the class is dry and
  // the arena cap forbids another page. Never touches the heap fallback.
  char* TryAllocate(std::size_t size);

  // TryAllocate, falling back to a tracked exact-size heap allocation so
  // the cache keeps serving under pool exhaustion. size == 0 returns
  // nullptr (empty values own no chunk).
  char* Allocate(std::size_t size);

  // Heap allocation with a null-owner header, for buffers that live
  // without an allocator (default-constructed values in tests).
  static char* AllocateUntracked(std::size_t size);

  // Returns the allocation behind `payload` to its owner: slab chunks
  // re-enter their class free list, fallbacks go back to the heap. The
  // caller must guarantee no concurrent reader can still dereference the
  // payload (see the reclamation discipline above). nullptr is a no-op.
  static void Free(char* payload);

  // Total heap footprint of the allocation behind `payload` (header +
  // chunk capacity); what byte accounting charges. 0 for nullptr.
  // Inline header read: the store path queries this several times per op.
  static std::size_t FootprintOf(const char* payload) {
    return payload == nullptr ? 0 : kHeaderBytes + HeaderOf(payload)->capacity;
  }

  // Usable capacity behind `payload` (0 for nullptr).
  static std::size_t CapacityOf(const char* payload) {
    return payload == nullptr ? 0 : HeaderOf(payload)->capacity;
  }

  static SlabAllocator* OwnerOf(const char* payload) {
    return payload == nullptr ? nullptr : HeaderOf(payload)->owner;
  }

  // True when an immediate TryAllocate(size) could succeed (free chunk or
  // arena headroom for a page) — the engine's eviction trigger. Sizes the
  // pool does not manage (0, oversize, pooling disabled) report true:
  // eviction cannot help the fallback path.
  bool HasAvailable(std::size_t size) const;

  // True when the arena has carved at least one chunk of `size`'s class.
  // The engine's "is eviction even worth trying" gate: freed chunks only
  // ever return to their own class, so a class the arena never carved can
  // not be helped by evicting — or by draining the reclaimer.
  bool HasChunksOf(std::size_t size) const;

  // Deterministic footprint an Allocate(size) of this policy produces —
  // identical across allocators with the same policy, which keeps byte
  // accounting comparable across shard counts and engines. Matches
  // FootprintOf on the returned payload.
  std::size_t FootprintFor(std::size_t size) const;

  std::size_t ClassCount() const { return class_capacity_.size(); }
  std::size_t ClassCapacity(std::size_t index) const {
    return class_capacity_[index];
  }
  const SlabPolicy& policy() const { return policy_; }

  SlabStats Stats() const;

  // -- Slab automove (maintenance plane) -----------------------------------
  //
  // Pages are carved wholly into one class and normally stay there for the
  // allocator's lifetime — which calcifies the arena: a workload shift
  // leaves the old hot class hoarding pages while the new one burns heap
  // fallbacks (the PR 5 wire-churn experiment measured exactly this). The
  // maintenance tick undoes it: when a class keeps reporting exhaustion
  // while another class owns a page with every chunk free, the tick moves
  // that page across.

  // Cumulative TryAllocate exhaustions charged to class `cls` — the rate
  // signal the automove policy steers on. Out-of-range indices report 0
  // (fallback-only sizes; no page can help them).
  std::uint64_t ExhaustedByClass(std::size_t cls) const;

  // Index of the pooled class serving `size`, or ClassCount() when none
  // does. Exposed for the automove policy and tests.
  std::size_t ClassFor(std::size_t size) const { return ClassIndexFor(size); }

  // Reassigns one fully-free page from some donor class to `to_cls`:
  // unlinks the donor page's chunks from its free list, recarves the page
  // at the destination stride, and pushes the new chunks onto to_cls's
  // free list. Returns false when to_cls is invalid, already has free
  // chunks (no need), or no class owns an entirely-free page. Maintenance-
  // plane cost: walks free lists and the page table under mu_.
  bool TryReassignPage(std::size_t to_cls);

 private:
  // Index of the smallest class with capacity >= size; class count when
  // the size is unpooled. O(1) via a flat lookup table indexed by the
  // size rounded up to the chunk alignment — the geometric ladder tops
  // out at a few KiB, so the table is a couple of KiB of uint16s and the
  // hot store path skips a binary search per query.
  std::size_t ClassIndexFor(std::size_t size) const {
    const std::size_t slot = (size + kChunkAlign - 1) / kChunkAlign;
    return slot < class_lookup_.size() ? class_lookup_[slot]
                                       : class_capacity_.size();
  }
  // Carves one more page for `cls`; false when the arena cap forbids it.
  // Requires mu_ held.
  bool GrowClassLocked(std::size_t cls);

  SlabPolicy policy_;
  std::vector<std::size_t> class_capacity_;  // ascending, immutable
  std::vector<std::uint16_t> class_lookup_;  // aligned size -> class index

  // One carved page. Tracking the owning class and chunk count (instead of
  // the old bare void*) is what makes automove possible: a page is movable
  // exactly when all `chunks` of its class's free list fall inside
  // [mem, mem + bytes).
  struct PageInfo {
    char* mem;
    std::size_t bytes;
    std::size_t cls;
    std::size_t chunks;
  };

  mutable std::mutex mu_;
  std::vector<char*> free_lists_;  // per class, intrusive via payload bytes
  std::vector<std::size_t> class_chunks_;  // chunks currently carved, per class
  std::vector<PageInfo> pages_;
  std::size_t bytes_reserved_ = 0;

  std::uint64_t chunks_in_use_ = 0;
  std::uint64_t fallback_bytes_ = 0;
  std::uint64_t fallback_allocs_ = 0;
  std::uint64_t class_exhausted_ = 0;
  std::vector<std::uint64_t> class_exhausted_by_;  // per class, same signal
  std::uint64_t pages_moved_ = 0;
};

static_assert(sizeof(SlabAllocator::Header) == SlabAllocator::kHeaderBytes);
static_assert(alignof(SlabAllocator::Header) <= SlabAllocator::kChunkAlign);

// Pure form of SlabAllocator::FootprintFor for callers (tests, capacity
// planning) that have a policy but no allocator instance.
std::size_t SlabFootprintFor(const SlabPolicy& policy, std::size_t size);

// The value-payload buffer stored in CacheValue: a chunk from a
// SlabAllocator (or a tracked heap fallback) plus a length. Copyable —
// the relativistic engine's updates clone values — with the copy placed
// in a fresh chunk from the same owner, so the original stays untouched
// for concurrent readers. Mutating operations take the allocator
// explicitly (the engine always has the shard's at hand) and never evict
// or block: under a stripe lock the only legal slow path is the heap
// fallback.
class SlabBuffer {
 public:
  SlabBuffer() = default;
  // Copies `contents` into a chunk from `slab` (nullptr = untracked heap).
  SlabBuffer(SlabAllocator* slab, std::string_view contents) {
    Assign(slab, contents);
  }
  // Adopts a chunk the caller already obtained from TryAllocate/Allocate,
  // copying `contents` into it. The TryAllocate-first store path uses this
  // to pay one allocator lock instead of a HasAvailable + Allocate pair.
  // The chunk's capacity must cover contents.size(); ownership transfers.
  static SlabBuffer FromChunk(char* chunk, std::string_view contents) {
    SlabBuffer buffer;
    buffer.payload_ = chunk;
    buffer.size_ = static_cast<std::uint32_t>(contents.size());
    if (!contents.empty()) {
      std::memcpy(chunk, contents.data(), contents.size());
    }
    return buffer;
  }
  ~SlabBuffer() { SlabAllocator::Free(payload_); }

  SlabBuffer(const SlabBuffer& other);
  SlabBuffer& operator=(const SlabBuffer& other);
  SlabBuffer(SlabBuffer&& other) noexcept
      : payload_(other.payload_), size_(other.size_) {
    other.payload_ = nullptr;
    other.size_ = 0;
  }
  SlabBuffer& operator=(SlabBuffer&& other) noexcept;

  std::string_view view() const {
    // Chunkless buffers hand out a valid (static) pointer so callers can
    // feed data()/size() straight into memcpy-style sinks.
    return payload_ == nullptr ? std::string_view{""}
                               : std::string_view{payload_, size_};
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return SlabAllocator::CapacityOf(payload_); }
  // Heap footprint of the backing allocation; what byte accounting
  // charges. 0 for an empty buffer.
  std::size_t footprint() const { return SlabAllocator::FootprintOf(payload_); }

  // Replaces the contents. Reuses the current chunk when the new size
  // fits its capacity (legal only on values no concurrent reader can see:
  // clones under a stripe lock, or any value under the locked engine's
  // global lock — the engines' update discipline guarantees exactly that).
  void Assign(SlabAllocator* slab, std::string_view contents);
  void Append(SlabAllocator* slab, std::string_view tail);
  void Prepend(SlabAllocator* slab, std::string_view head);
  void Clear();

 private:
  char* payload_ = nullptr;
  std::uint32_t size_ = 0;
};

}  // namespace rp::memcache

#endif  // RP_MEMCACHE_SLAB_H_
