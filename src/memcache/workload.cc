#include "src/memcache/workload.h"

#include <atomic>
#include <thread>
#include <vector>

#include "src/memcache/protocol.h"
#include "src/memcache/server.h"
#include "src/util/affinity.h"
#include "src/util/rng.h"
#include "src/util/spin_barrier.h"
#include "src/util/stopwatch.h"
#include "src/util/zipf.h"

namespace rp::memcache {

std::string WorkloadKey(std::size_t i) {
  return "memtier-" + std::to_string(i);
}

namespace {

struct ClientTotals {
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

// One client's inner loop, protocol round trip included.
void RunProtocolClient(CacheEngine& engine, const WorkloadConfig& config,
                       std::size_t id, const std::atomic<bool>& stop,
                       ClientTotals& totals) {
  Xoshiro256 rng(config.seed + id * 0x9E37);
  ZipfGenerator zipf(config.num_keys, config.zipf_theta);
  const std::string value(config.value_size, 'v');
  RequestParser parser;

  while (!stop.load(std::memory_order_relaxed)) {
    const std::size_t key_index = zipf.Next(rng);
    const bool is_get = rng.NextDouble() < config.get_ratio;
    std::string wire;
    const std::string key = WorkloadKey(key_index);
    if (is_get) {
      wire = "get " + key + "\r\n";
    } else {
      wire = "set " + key + " 0 0 " + std::to_string(value.size()) + "\r\n" +
             value + "\r\n";
    }
    parser.Feed(wire);
    Request request;
    if (parser.Next(&request) != ParseStatus::kOk) {
      continue;  // unreachable for well-formed generated traffic
    }
    bool quit = false;
    const std::string response = ExecuteRequest(engine, request, &quit);
    ++totals.requests;
    if (is_get) {
      ++totals.gets;
      // "VALUE..." prefix = hit; bare "END" = miss.
      if (response.size() > 5 && response[0] == 'V') {
        ++totals.hits;
      } else {
        ++totals.misses;
      }
    } else {
      ++totals.sets;
    }
  }
}

// Direct-call variant (no codec): isolates raw engine throughput.
void RunDirectClient(CacheEngine& engine, const WorkloadConfig& config,
                     std::size_t id, const std::atomic<bool>& stop,
                     ClientTotals& totals) {
  Xoshiro256 rng(config.seed + id * 0x9E37);
  ZipfGenerator zipf(config.num_keys, config.zipf_theta);
  const std::string value(config.value_size, 'v');
  StoredValue out;

  while (!stop.load(std::memory_order_relaxed)) {
    const std::size_t key_index = zipf.Next(rng);
    const bool is_get = rng.NextDouble() < config.get_ratio;
    const std::string key = WorkloadKey(key_index);
    if (is_get) {
      ++totals.gets;
      if (engine.Get(key, &out)) {
        ++totals.hits;
      } else {
        ++totals.misses;
      }
    } else {
      engine.Set(key, value, 0, 0);
      ++totals.sets;
    }
    ++totals.requests;
  }
}

}  // namespace

WorkloadResult RunWorkload(CacheEngine& engine, const WorkloadConfig& config) {
  if (config.prepopulate) {
    const std::string value(config.value_size, 'v');
    for (std::size_t i = 0; i < config.num_keys; ++i) {
      engine.Set(WorkloadKey(i), value, 0, 0);
    }
  }

  std::atomic<bool> stop{false};
  SpinBarrier barrier(config.num_clients + 1);
  std::vector<ClientTotals> totals(config.num_clients);
  std::vector<std::thread> clients;
  clients.reserve(config.num_clients);

  for (std::size_t id = 0; id < config.num_clients; ++id) {
    clients.emplace_back([&, id] {
      PinThisThreadToCpu(id);
      barrier.ArriveAndWait();
      if (config.use_protocol) {
        RunProtocolClient(engine, config, id, stop, totals[id]);
      } else {
        RunDirectClient(engine, config, id, stop, totals[id]);
      }
    });
  }

  barrier.ArriveAndWait();
  Stopwatch watch;
  while (watch.ElapsedSeconds() < config.duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) {
    client.join();
  }
  const double elapsed = watch.ElapsedSeconds();

  WorkloadResult result;
  result.duration_seconds = elapsed;
  for (const ClientTotals& t : totals) {
    result.total_requests += t.requests;
    result.gets += t.gets;
    result.sets += t.sets;
    result.hits += t.hits;
    result.misses += t.misses;
  }
  result.requests_per_second =
      static_cast<double>(result.total_requests) / elapsed;
  return result;
}

}  // namespace rp::memcache
