#include "src/memcache/workload.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/memcache/locked_engine.h"
#include "src/memcache/protocol.h"
#include "src/memcache/rp_engine.h"
#include "src/memcache/server.h"
#include "src/util/affinity.h"
#include "src/util/rng.h"
#include "src/util/spin_barrier.h"
#include "src/util/stopwatch.h"
#include "src/util/zipf.h"

namespace rp::memcache {

std::string WorkloadKey(std::size_t i) {
  return "memtier-" + std::to_string(i);
}

std::unique_ptr<CacheEngine> MakeEngine(std::string_view name,
                                        const EngineConfig& config) {
  if (name == "rp") {
    return std::make_unique<RpEngine>(config);
  }
  if (name == "locked") {
    return std::make_unique<LockedEngine>(config);
  }
  return nullptr;
}

namespace {

struct ClientTotals {
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

// Backing store for workload values: one buffer of the largest size the
// config can draw; per-op values are prefixes of it.
std::string ValueBuffer(const WorkloadConfig& config) {
  return std::string(std::max(config.value_size, config.value_size_max), 'v');
}

// The value for one SET: a fixed value_size, or (when value_size_max
// extends the range) a size drawn uniformly from [value_size,
// value_size_max] — which walks stores across slab size classes, the
// workload the allocator tuning cares about.
std::string_view NextValue(const WorkloadConfig& config, Xoshiro256& rng,
                           const std::string& buffer) {
  if (config.value_size_max <= config.value_size) {
    return {buffer.data(), config.value_size};
  }
  const std::size_t span = config.value_size_max - config.value_size + 1;
  return {buffer.data(), config.value_size + rng.NextBounded(span)};
}

// One key draw: the zipf distribution, with the adversarial hot-key
// overlay on top — with probability hot_key_share the op is redirected to
// one of the first hot_key_count keys (uniformly). Every key-drawing path
// (single get/set, multi-get, batched stores, all three client loops)
// funnels through here so the overlay shapes them identically.
std::size_t NextKeyIndex(const WorkloadConfig& config, Xoshiro256& rng,
                         ZipfGenerator& zipf) {
  if (config.hot_key_count != 0 && rng.NextDouble() < config.hot_key_share) {
    return rng.NextBounded(std::min(config.hot_key_count, config.num_keys));
  }
  return zipf.Next(rng);
}

// Formats one random round trip in wire form into *wire (replacing its
// contents). Returns whether it is a GET. Shared by the in-process and
// socket client loops so both benchmark modes drive the same workload.
// GETs carry config.keys_per_get keys ("get k1 k2 ...", each drawn
// independently) to exercise the batched multi-get path; SET round trips
// carry config.sets_per_request stores — all but the last noreply, so
// exactly one STORED comes back per round trip — to exercise the batched
// store path.
bool NextRequestWire(const WorkloadConfig& config, Xoshiro256& rng,
                     ZipfGenerator& zipf, const std::string& value_buffer,
                     std::string* wire) {
  const bool is_get = rng.NextDouble() < config.get_ratio;
  wire->clear();
  if (config.use_meta) {
    // Meta quiet runs: k quiet requests bounded by an mn barrier. The
    // server batches the whole run into one engine call; only hits (mg v)
    // and the MN answer come back.
    if (is_get) {
      const std::size_t keys = std::max<std::size_t>(config.keys_per_get, 1);
      for (std::size_t k = 0; k < keys; ++k) {
        *wire += "mg ";
        *wire += WorkloadKey(NextKeyIndex(config, rng, zipf));
        *wire += " v q\r\n";
      }
    } else {
      const std::size_t sets =
          std::max<std::size_t>(config.sets_per_request, 1);
      for (std::size_t s = 0; s < sets; ++s) {
        const std::string_view value = NextValue(config, rng, value_buffer);
        *wire += "ms ";
        *wire += WorkloadKey(NextKeyIndex(config, rng, zipf));
        *wire += ' ';
        *wire += std::to_string(value.size());
        *wire += " q\r\n";
        *wire += value;
        *wire += "\r\n";
      }
    }
    *wire += "mn\r\n";
    return is_get;
  }
  if (is_get) {
    *wire += "get";
    const std::size_t keys = std::max<std::size_t>(config.keys_per_get, 1);
    for (std::size_t k = 0; k < keys; ++k) {
      *wire += ' ';
      *wire += WorkloadKey(NextKeyIndex(config, rng, zipf));
    }
    *wire += "\r\n";
  } else {
    const std::size_t sets = std::max<std::size_t>(config.sets_per_request, 1);
    for (std::size_t s = 0; s < sets; ++s) {
      const std::string_view value = NextValue(config, rng, value_buffer);
      *wire += "set ";
      *wire += WorkloadKey(NextKeyIndex(config, rng, zipf));
      *wire += " 0 0 ";
      *wire += std::to_string(value.size());
      if (s + 1 < sets) {
        *wire += " noreply";
      }
      *wire += "\r\n";
      *wire += value;
      *wire += "\r\n";
    }
  }
  return is_get;
}

// Hits in a (multi-)get response = its value-bearing result lines:
// "VALUE " classically, "VA " for meta (mg v answers). Workload values are
// runs of 'v' with no spaces or CRLFs, so a data block can never contain
// either token.
std::uint64_t CountToken(const std::string& response, std::string_view token) {
  std::uint64_t count = 0;
  for (std::size_t pos = response.find(token); pos != std::string::npos;
       pos = response.find(token, pos + token.size())) {
    ++count;
  }
  return count;
}

std::uint64_t CountHitLines(const WorkloadConfig& config,
                            const std::string& response) {
  return CountToken(response, config.use_meta ? "VA " : "VALUE ");
}

// One client's inner loop, protocol round trip included.
void RunProtocolClient(CacheEngine& engine, const WorkloadConfig& config,
                       std::size_t id, const std::atomic<bool>& stop,
                       ClientTotals& totals) {
  Xoshiro256 rng(config.seed + id * 0x9E37);
  ZipfGenerator zipf(config.num_keys, config.zipf_theta);
  const std::string value = ValueBuffer(config);
  RequestParser parser;
  std::string wire;
  std::string response;
  std::vector<Request> requests;

  while (!stop.load(std::memory_order_relaxed)) {
    const bool is_get = NextRequestWire(config, rng, zipf, value, &wire);
    parser.Feed(wire);
    // A round trip may carry several pipelined requests (a noreply SET
    // burst); drain them all before answering, like the server does.
    requests.clear();
    for (;;) {
      Request request;
      if (parser.Next(&request) != ParseStatus::kOk) {
        break;
      }
      requests.push_back(std::move(request));
    }
    if (requests.empty()) {
      continue;  // unreachable for well-formed generated traffic
    }
    bool quit = false;
    response.clear();
    // Grouped dispatch, exactly the server connection's batching: runs of
    // mg become one ExecuteMetaGetBatch, runs of batchable stores (set
    // bursts, quiet ms/md runs) one ExecuteStoreBatch, everything else
    // (the mn barrier included) the per-request path.
    std::uint64_t stores_executed = 0;
    std::size_t i = 0;
    while (i < requests.size()) {
      std::size_t j = i;
      if (requests[i].op == Op::kMetaGet) {
        while (j < requests.size() && requests[j].op == Op::kMetaGet) {
          ++j;
        }
        ExecuteMetaGetBatch(engine, requests.data() + i, j - i, &response);
      } else if (IsBatchableStore(requests[i])) {
        while (j < requests.size() && IsBatchableStore(requests[j])) {
          ++j;
        }
        stores_executed += j - i;
        if (j - i == 1) {
          ExecuteRequest(engine, requests[i], &response, &quit);
        } else {
          ExecuteStoreBatch(engine, requests.data() + i, j - i, &response);
        }
      } else {
        ExecuteRequest(engine, requests[i], &response, &quit);
        ++j;
      }
      i = j;
    }
    ++totals.requests;
    if (is_get) {
      const std::uint64_t keys =
          std::max<std::size_t>(config.keys_per_get, 1);
      const std::uint64_t hits = CountHitLines(config, response);
      totals.gets += keys;
      totals.hits += hits;
      totals.misses += keys - hits;
    } else {
      totals.sets += stores_executed;
    }
  }
}

// Direct-call variant (no codec): isolates raw engine throughput.
void RunDirectClient(CacheEngine& engine, const WorkloadConfig& config,
                     std::size_t id, const std::atomic<bool>& stop,
                     ClientTotals& totals) {
  Xoshiro256 rng(config.seed + id * 0x9E37);
  ZipfGenerator zipf(config.num_keys, config.zipf_theta);
  const std::string value_buffer = ValueBuffer(config);
  const std::size_t keys_per_get =
      std::max<std::size_t>(config.keys_per_get, 1);
  std::vector<std::string> batch_keys(keys_per_get);
  std::vector<std::string_view> batch_views(keys_per_get);
  std::vector<MultiGetResult> batch_results(keys_per_get);
  const std::size_t sets_per_request =
      std::max<std::size_t>(config.sets_per_request, 1);
  std::vector<std::string> store_keys(sets_per_request);
  std::vector<StoreOp> store_ops(sets_per_request);
  std::vector<StoreResult> store_results(sets_per_request);
  StoredValue out;

  while (!stop.load(std::memory_order_relaxed)) {
    const bool is_get = rng.NextDouble() < config.get_ratio;
    if (is_get && keys_per_get > 1) {
      for (std::size_t k = 0; k < keys_per_get; ++k) {
        batch_keys[k] = WorkloadKey(NextKeyIndex(config, rng, zipf));
        batch_views[k] = batch_keys[k];
      }
      engine.GetMany(batch_views.data(), keys_per_get, batch_results.data());
      totals.gets += keys_per_get;
      for (const MultiGetResult& result : batch_results) {
        if (result.hit) {
          ++totals.hits;
        } else {
          ++totals.misses;
        }
      }
    } else if (is_get) {
      const std::string key = WorkloadKey(NextKeyIndex(config, rng, zipf));
      ++totals.gets;
      if (engine.Get(key, &out)) {
        ++totals.hits;
      } else {
        ++totals.misses;
      }
    } else if (sets_per_request > 1) {
      for (std::size_t s = 0; s < sets_per_request; ++s) {
        store_keys[s] = WorkloadKey(NextKeyIndex(config, rng, zipf));
        StoreOp& op = store_ops[s];
        op.kind = StoreKind::kSet;
        op.key = store_keys[s];
        op.data = NextValue(config, rng, value_buffer);
      }
      engine.StoreMany(store_ops.data(), sets_per_request,
                       store_results.data());
      totals.sets += sets_per_request;
    } else {
      engine.Set(WorkloadKey(NextKeyIndex(config, rng, zipf)),
                 NextValue(config, rng, value_buffer), 0, 0);
      ++totals.sets;
    }
    ++totals.requests;
  }
}

// Blocking loopback client used by the socket workload.
class SocketClient {
 public:
  explicit SocketClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~SocketClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  bool connected() const { return fd_ >= 0; }

  bool SendAll(std::string_view wire) {
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return false;
      }
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  // Appends socket bytes to *acc until it ends with `terminator`.
  bool ReadUntil(std::string_view terminator, std::string* acc) {
    char buf[16 * 1024];
    for (;;) {
      if (acc->size() >= terminator.size() &&
          acc->compare(acc->size() - terminator.size(), terminator.size(),
                       terminator.data(), terminator.size()) == 0) {
        return true;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) {
        return false;
      }
      acc->append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
};

// One socket client's inner loop: one blocking round trip per operation.
void RunSocketClient(std::uint16_t port, const WorkloadConfig& config,
                     std::size_t id, const std::atomic<bool>& stop,
                     ClientTotals& totals) {
  SocketClient client(port);
  if (!client.connected()) {
    return;
  }
  Xoshiro256 rng(config.seed + id * 0x9E37);
  ZipfGenerator zipf(config.num_keys, config.zipf_theta);
  const std::string value = ValueBuffer(config);
  std::string wire;
  std::string response;

  while (!stop.load(std::memory_order_relaxed)) {
    const bool is_get = NextRequestWire(config, rng, zipf, value, &wire);
    response.clear();
    // Classic GET responses end with END\r\n and every other classic
    // response is a single line; meta round trips always end with the mn
    // barrier's MN\r\n (quiet runs suppress everything else on success).
    // The workload values never contain protocol framing.
    const std::string_view terminator =
        config.use_meta ? "MN\r\n" : (is_get ? "END\r\n" : "\r\n");
    if (!client.SendAll(wire) || !client.ReadUntil(terminator, &response)) {
      return;  // server went away mid-run; partial totals still count
    }
    ++totals.requests;
    if (is_get) {
      const std::uint64_t keys =
          std::max<std::size_t>(config.keys_per_get, 1);
      const std::uint64_t hits = CountHitLines(config, response);
      totals.gets += keys;
      totals.hits += hits;
      totals.misses += keys - hits;
    } else {
      // One STORED answers the whole burst (earlier stores are noreply).
      totals.sets += std::max<std::size_t>(config.sets_per_request, 1);
    }
  }
}

// Loads every key through one connection with pipelined noreply sets.
bool PrepopulateOverSocket(std::uint16_t port, const WorkloadConfig& config) {
  SocketClient client(port);
  if (!client.connected()) {
    return false;
  }
  const std::string value(config.value_size, 'v');
  std::string wire;
  for (std::size_t i = 0; i < config.num_keys; ++i) {
    wire += "set ";
    wire += WorkloadKey(i);
    wire += " 0 0 ";
    wire += std::to_string(value.size());
    wire += " noreply\r\n";
    wire += value;
    wire += "\r\n";
    if (wire.size() >= 256 * 1024) {
      if (!client.SendAll(wire)) {
        return false;
      }
      wire.clear();
    }
  }
  // The version round trip doubles as a barrier: when it answers, every
  // pipelined set before it has been executed.
  wire += "version\r\n";
  std::string response;
  return client.SendAll(wire) && client.ReadUntil("\r\n", &response);
}

}  // namespace

WorkloadResult RunSocketWorkload(std::uint16_t port,
                                 const WorkloadConfig& config) {
  if (config.prepopulate && !PrepopulateOverSocket(port, config)) {
    return {};
  }

  std::atomic<bool> stop{false};
  SpinBarrier barrier(config.num_clients + 1);
  std::vector<ClientTotals> totals(config.num_clients);
  std::vector<std::thread> clients;
  clients.reserve(config.num_clients);

  for (std::size_t id = 0; id < config.num_clients; ++id) {
    clients.emplace_back([&, id] {
      PinThisThreadToCpu(id);
      barrier.ArriveAndWait();
      RunSocketClient(port, config, id, stop, totals[id]);
    });
  }

  barrier.ArriveAndWait();
  Stopwatch watch;
  while (watch.ElapsedSeconds() < config.duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) {
    client.join();
  }
  const double elapsed = watch.ElapsedSeconds();

  WorkloadResult result;
  result.duration_seconds = elapsed;
  for (const ClientTotals& t : totals) {
    result.total_requests += t.requests;
    result.gets += t.gets;
    result.sets += t.sets;
    result.hits += t.hits;
    result.misses += t.misses;
  }
  result.requests_per_second =
      static_cast<double>(result.total_requests) / elapsed;
  return result;
}

WorkloadResult RunWorkload(CacheEngine& engine, const WorkloadConfig& config) {
  if (config.prepopulate) {
    const std::string value(config.value_size, 'v');
    for (std::size_t i = 0; i < config.num_keys; ++i) {
      engine.Set(WorkloadKey(i), value, 0, 0);
    }
  }

  std::atomic<bool> stop{false};
  SpinBarrier barrier(config.num_clients + 1);
  std::vector<ClientTotals> totals(config.num_clients);
  std::vector<std::thread> clients;
  clients.reserve(config.num_clients);

  for (std::size_t id = 0; id < config.num_clients; ++id) {
    clients.emplace_back([&, id] {
      PinThisThreadToCpu(id);
      barrier.ArriveAndWait();
      if (config.use_protocol) {
        RunProtocolClient(engine, config, id, stop, totals[id]);
      } else {
        RunDirectClient(engine, config, id, stop, totals[id]);
      }
    });
  }

  barrier.ArriveAndWait();
  Stopwatch watch;
  while (watch.ElapsedSeconds() < config.duration_seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& client : clients) {
    client.join();
  }
  const double elapsed = watch.ElapsedSeconds();

  WorkloadResult result;
  result.duration_seconds = elapsed;
  for (const ClientTotals& t : totals) {
    result.total_requests += t.requests;
    result.gets += t.gets;
    result.sets += t.sets;
    result.hits += t.hits;
    result.misses += t.misses;
  }
  result.requests_per_second =
      static_cast<double>(result.total_requests) / elapsed;
  return result;
}

}  // namespace rp::memcache
