// Cache-engine interface shared by the locked (default-memcached-like) and
// relativistic engines. The protocol server and the workload driver program
// against this interface, so the F5 reproduction swaps engines and nothing
// else.
#ifndef RP_MEMCACHE_ENGINE_H_
#define RP_MEMCACHE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "src/memcache/item.h"
#include "src/memcache/slab.h"

namespace rp::memcache {

enum class StoreResult {
  kStored,
  kNotStored,  // add on existing / replace on missing
  kExists,     // cas mismatch
  kNotFound,   // cas on missing key
};

// A std::mutex that counts this thread's acquisitions in thread-local
// storage — the store-path analogue of Epoch::ThreadReadSections(). Both
// engines guard their store bookkeeping with it, so tests can pin the
// one-lock-per-batch invariant ("a k-store shard group takes exactly one
// store-mutex acquisition") by delta, with zero shared-state cost on the
// hot path (the counter lives on the acquiring thread's own cache line).
class StoreMutex {
 public:
  void lock() {
    ++tls_acquisitions_;
    mu_.lock();
  }
  void unlock() { mu_.unlock(); }
  bool try_lock() {
    if (!mu_.try_lock()) {
      return false;
    }
    ++tls_acquisitions_;
    return true;
  }

  // Store-mutex acquisitions performed by the calling thread, across every
  // StoreMutex instance in the process.
  static std::uint64_t ThreadAcquisitions() { return tls_acquisitions_; }

 private:
  std::mutex mu_;
  static inline thread_local std::uint64_t tls_acquisitions_ = 0;
};

// One element of a batched store (StoreMany below). All six storage
// commands batch — not just SET — so a pipelined burst of mixed stores
// still executes as one shard group per shard. Views point into the parsed
// requests; they must stay valid for the duration of the StoreMany call.
// kDelete lets a pipelined run of meta deletes (`md ... q`) ride the same
// shard-grouped batch; it carries no data and maps kStored → deleted,
// kNotFound → missing.
enum class StoreKind : std::uint8_t {
  kSet,
  kAdd,
  kReplace,
  kAppend,
  kPrepend,
  kCas,
  kDelete,
};

struct StoreOp {
  StoreKind kind = StoreKind::kSet;
  std::string_view key;
  std::string_view data;
  std::uint32_t flags = 0;
  std::int64_t exptime = 0;
  std::uint64_t cas = 0;  // kCas only
};

struct EngineConfig {
  std::size_t initial_buckets = 1024;
  // Item cap; inserting beyond it evicts (approximately) least-recently
  // used items. 0 = unlimited.
  std::size_t max_items = 0;
  // Byte cap over the charged size of every resident item (key + actual
  // slab-chunk footprint + kItemOverheadBytes). 0 = unlimited. Sharded
  // engines split the budget evenly (max_bytes / shards) and evict per
  // shard; the same split sizes each shard's slab arena.
  std::size_t max_bytes = 0;
  // Keyspace partitions for engines that shard their cache state (rounded
  // up to a power of two, clamped to [1, 4096]; 0 and 1 both mean
  // unsharded). Each shard owns
  // its own table, store mutex, eviction queue and stats, so writers to
  // different shards never contend. Engines modelling a single global
  // cache lock (LockedEngine) ignore this.
  std::size_t shards = 8;
  // Slab size-class tuning (see src/memcache/slab.h): payload chunks grow
  // geometrically by `slab_growth` (memcached -f) up to `slab_chunk_max`
  // bytes; larger values (and everything, when slab_chunk_max = 0) take
  // exact-size tracked heap allocations — the per-item-malloc baseline.
  double slab_growth = 1.25;
  std::size_t slab_chunk_max = 8 * 1024;
  // Hot-key front cache (RP engine only): the maintenance tick promotes
  // the most-hammered keys into a per-shard seqlock-published snapshot so
  // their GETs skip the table walk, and repeated SETs to a promoted key
  // coalesce inside a store batch. Off = every GET walks the table (the
  // abl14 ablation baseline).
  bool hot_key_cache = true;
};

// The slab geometry an engine derives from its config for each of
// `shard_count` shards (LockedEngine passes 1). Exposed so tests and
// capacity planning can predict exact charges via SlabFootprintFor.
inline SlabPolicy SlabPolicyFor(const EngineConfig& config,
                                std::size_t shard_count) {
  SlabPolicy policy;
  policy.growth = config.slab_growth;
  policy.chunk_max = config.slab_chunk_max;
  if (config.max_bytes != 0 && shard_count != 0) {
    policy.arena_bytes =
        (config.max_bytes + shard_count - 1) / shard_count;
  }
  return policy;
}

// What the byte gauge charges for a key/data pair stored under `config`
// (deterministic: slab class capacities depend only on the policy, not on
// shard placement). The prediction half of the exact-accounting tests.
inline std::size_t ModelChargedBytes(const EngineConfig& config,
                                     std::size_t key_size,
                                     std::size_t data_size) {
  return key_size + SlabFootprintFor(SlabPolicyFor(config, 1), data_size) +
         kItemOverheadBytes;
}

// Outcome of incr/decr. The protocol distinguishes a missing key
// (NOT_FOUND on the wire) from a present-but-non-numeric value
// (CLIENT_ERROR), so the engine must report which one happened rather
// than collapsing both into "no result".
enum class ArithStatus {
  kOk,
  kNotFound,    // key absent or expired
  kNonNumeric,  // value exists but is not an unsigned decimal integer
};

struct ArithResult {
  ArithStatus status = ArithStatus::kNotFound;
  std::uint64_t value = 0;  // post-op value, valid only when status == kOk

  bool ok() const { return status == ArithStatus::kOk; }
};

// Snapshot of engine counters. Sharded engines aggregate across shards at
// snapshot time, so the totals are consistent-enough gauges (memcached
// semantics), not a linearizable cut.
struct EngineStats {
  std::uint64_t get_hits = 0;
  std::uint64_t get_misses = 0;
  std::uint64_t sets = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expired_reclaims = 0;
  std::uint64_t items = 0;
  // Cumulative count of items ever linked into the cache (new keys).
  std::uint64_t total_items = 0;
  // Charged bytes currently resident: key + actual chunk footprint +
  // overhead per item. Exact against the allocator, not a model.
  std::uint64_t bytes = 0;
  // Share of `bytes` that is slab-class internal fragmentation (chunk
  // footprint minus stored payload bytes), summed over resident items.
  std::uint64_t bytes_wasted = 0;
  // Slab page memory currently carved from the heap, across shards.
  std::uint64_t slab_reserved = 0;
  // Cumulative allocations served by the exact-size heap fallback (pool
  // exhausted or value larger than slab_chunk_max).
  std::uint64_t slab_fallbacks = 0;
  // Configured max_bytes (0 = unlimited); the `stats` wire field.
  std::uint64_t limit_maxbytes = 0;
  // Batched-store observability (mirror of the GetMany accounting):
  // StoreMany calls that actually batched (2+ ops), and the ops they
  // carried. Singleton stores touch neither, so batching effectiveness is
  // store_batched_ops / cmd_set.
  std::uint64_t store_batches = 0;
  std::uint64_t store_batched_ops = 0;
  // -- Maintenance plane (PR 7). All zero on engines without one. ---------
  // Keys promoted into the hot-key front cache by the maintenance tick.
  std::uint64_t hot_key_promotions = 0;
  // GETs served from the front cache (no table walk; also counted in
  // get_hits — this is a breakdown, not an addition).
  std::uint64_t front_cache_hits = 0;
  // SETs coalesced away by store-batch op combining (still counted in
  // `sets`; the combined op's effect survives via the batch's last SET).
  std::uint64_t set_combines = 0;
  // Slab pages reassigned across size classes by automove.
  std::uint64_t slab_pages_moved = 0;
  // Dead (expired/flushed) items reclaimed by the maintenance crawler
  // rather than by a GET tripping over them (also in expired_reclaims).
  std::uint64_t crawler_reclaims = 0;
  // Deferred-reclamation queue health (process-global RCU domain, so both
  // engines report the same numbers): callbacks currently pending, batch
  // wakeups of the dedicated reclaimer thread, and batches drained inline
  // by maintenance ticks instead of the reclaimer.
  std::uint64_t reclaimer_pending = 0;
  std::uint64_t reclaimer_wakeups = 0;
  std::uint64_t reclaimer_inline_pumps = 0;
  // -- Meta protocol (PR 9). Commands executed per meta opcode; counted at
  // the dispatch layer (ExecuteRequest / the batched meta paths), stored
  // on the engine so `stats` reports them per engine like everything else.
  std::uint64_t cmd_mg = 0;
  std::uint64_t cmd_ms = 0;
  std::uint64_t cmd_md = 0;
  std::uint64_t cmd_ma = 0;
};

// One slot of a multi-get answer: out[i] describes keys[i] (miss = !hit).
struct MultiGetResult {
  StoredValue value;
  bool hit = false;
};

class CacheEngine {
 public:
  virtual ~CacheEngine() = default;

  // Copies the live value for `key` into *out. Expired items count as
  // misses (and are lazily reclaimed).
  virtual bool Get(const std::string& key, StoredValue* out) = 0;

  // Batched multi-get: fills out[0..count) for keys[0..count), semantics
  // identical to per-key Get (expired items miss and are lazily reclaimed,
  // stats count per key). Keys arrive as string_views over the parsed
  // request so the hot path never materializes per-key std::strings — the
  // stack's hashers and table lookups are transparent end-to-end. Engines
  // override to amortize per-op costs across the batch — the relativistic
  // engine runs each shard's keys inside ONE read-side critical section
  // instead of one per key. The default is the unbatched loop.
  virtual void GetMany(const std::string_view* keys, std::size_t count,
                       MultiGetResult* out) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i].hit = Get(std::string(keys[i]), &out[i].value);
    }
  }

  // Scratch-region multi-get for the meta protocol's quiet-pipelined `mg`
  // runs: hit values are appended to *scratch (inside the engine's read
  // section, where it overrides) and referenced by offset in out[i], so
  // no per-hit std::string is ever allocated. Semantics otherwise match
  // GetMany exactly — per-key hit/miss stats, lazy reclamation of dead
  // items — plus the meta-flag metadata (expire_at, prior last_used,
  // prior fetched bit) each hit carries. The default loops Get(); the
  // relativistic engine overrides with one read section per shard group.
  virtual void GetManyScratch(const std::string_view* keys, std::size_t count,
                              ScratchGetResult* out, std::string* scratch) {
    StoredValue value;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = ScratchGetResult{};
      if (!Get(std::string(keys[i]), &value)) {
        continue;
      }
      out[i].hit = true;
      out[i].data_offset = scratch->size();
      out[i].data_size = value.data.size();
      scratch->append(value.data);
      out[i].flags = value.flags;
      out[i].cas = value.cas;
      out[i].expire_at = value.expire_at;
      out[i].last_used = value.last_used;
      out[i].fetched = value.fetched;
    }
  }

  // Storage commands take the payload as a string_view over the parsed
  // request: engines copy it straight into a slab chunk, so no
  // intermediate owning std::string is ever allocated for the data block.
  virtual StoreResult Set(const std::string& key, std::string_view data,
                          std::uint32_t flags, std::int64_t exptime) = 0;
  virtual StoreResult Add(const std::string& key, std::string_view data,
                          std::uint32_t flags, std::int64_t exptime) = 0;
  virtual StoreResult Replace(const std::string& key, std::string_view data,
                              std::uint32_t flags, std::int64_t exptime) = 0;
  virtual StoreResult Append(const std::string& key, std::string_view data) = 0;
  virtual StoreResult Prepend(const std::string& key, std::string_view data) = 0;
  virtual StoreResult CheckAndSet(const std::string& key, std::string_view data,
                                  std::uint32_t flags, std::int64_t exptime,
                                  std::uint64_t expected_cas) = 0;

  // Batched stores: executes ops[0..count) in order, filling
  // results[0..count), semantics identical to issuing the per-op calls
  // back to back (wire responses, CAS included, must not change). The
  // connection collects each pipelined readiness event's storage burst
  // into one call so engines can amortize per-op costs — the relativistic
  // engine groups ops by shard and pays one store-mutex acquisition, one
  // resize nudge and at most one reclaimer pump per shard group; the
  // locked engine takes its global mutex once for the whole batch. The
  // default is the unbatched loop.
  virtual void StoreMany(const StoreOp* ops, std::size_t count,
                         StoreResult* results) {
    for (std::size_t i = 0; i < count; ++i) {
      const StoreOp& op = ops[i];
      const std::string key(op.key);
      switch (op.kind) {
        case StoreKind::kSet:
          results[i] = Set(key, op.data, op.flags, op.exptime);
          break;
        case StoreKind::kAdd:
          results[i] = Add(key, op.data, op.flags, op.exptime);
          break;
        case StoreKind::kReplace:
          results[i] = Replace(key, op.data, op.flags, op.exptime);
          break;
        case StoreKind::kAppend:
          results[i] = Append(key, op.data);
          break;
        case StoreKind::kPrepend:
          results[i] = Prepend(key, op.data);
          break;
        case StoreKind::kCas:
          results[i] = CheckAndSet(key, op.data, op.flags, op.exptime, op.cas);
          break;
        case StoreKind::kDelete:
          results[i] =
              Delete(key) ? StoreResult::kStored : StoreResult::kNotFound;
          break;
      }
    }
  }

  virtual bool Delete(const std::string& key) = 0;

  // Returns the post-op value on kOk; distinguishes a missing/expired key
  // (kNotFound) from a non-numeric value (kNonNumeric). Decr clamps at
  // zero (protocol rule).
  virtual ArithResult Incr(const std::string& key, std::uint64_t delta) = 0;
  virtual ArithResult Decr(const std::string& key, std::uint64_t delta) = 0;

  virtual bool Touch(const std::string& key, std::int64_t exptime) = 0;

  // flush_all [delay]: delay <= 0 drops everything immediately; delay > 0
  // arms a deadline (exptime conventions: <= 30 days means `delay` seconds
  // out, larger is an absolute unix time), after which every item stored
  // before the deadline is logically expired (lazily reclaimed). Items
  // stored at or after the deadline survive.
  virtual void FlushAll(std::int64_t delay_seconds) = 0;
  void FlushAll() { FlushAll(0); }

  virtual std::size_t ItemCount() const = 0;
  virtual EngineStats Stats() const = 0;
  virtual const char* Name() const = 0;

  // -- Meta-command accounting (`stats` fields cmd_mg/ms/md/ma) -----------
  // Bumped by the dispatch layer (which knows the wire opcode; the engine
  // store paths only see StoreOps) and folded into EngineStats by the
  // engines' Stats() via FillMetaCommandStats. Lives on the base so both
  // engines share one implementation and the counters survive engine-
  // agnostic call sites like the workload driver.
  enum class MetaCmd { kGet, kSet, kDelete, kArith };
  void CountMetaCommand(MetaCmd cmd, std::uint64_t n = 1) {
    meta_cmds_[static_cast<std::size_t>(cmd)].fetch_add(
        n, std::memory_order_relaxed);
  }

 protected:
  void FillMetaCommandStats(EngineStats* stats) const {
    stats->cmd_mg = meta_cmds_[0].load(std::memory_order_relaxed);
    stats->cmd_ms = meta_cmds_[1].load(std::memory_order_relaxed);
    stats->cmd_md = meta_cmds_[2].load(std::memory_order_relaxed);
    stats->cmd_ma = meta_cmds_[3].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> meta_cmds_[4] = {};
};

}  // namespace rp::memcache

#endif  // RP_MEMCACHE_ENGINE_H_
