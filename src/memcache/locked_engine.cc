#include "src/memcache/locked_engine.h"

#include <charconv>
#include <iterator>

#include "src/rcu/callback.h"
#include "src/rcu/epoch.h"

namespace rp::memcache {

namespace {

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

LockedEngine::LockedEngine(EngineConfig config)
    : config_(config), slab_(SlabPolicyFor(config_, 1)) {
  map_.reserve(config_.initial_buckets);
}

template <typename K>
LockedEngine::Map::iterator LockedEngine::FindLiveLocked(const K& key,
                                                         std::int64_t now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return map_.end();
  }
  if (!IsLive(it->second.value, flush_at_, now)) {
    ++stats_.expired_reclaims;
    EraseLocked(it);
    return map_.end();
  }
  return it;
}

void LockedEngine::TouchLruLocked(Map::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void LockedEngine::EraseLocked(Map::iterator it) {
  bytes_ -= ChargedBytes(it->first.size(), it->second.value.data);
  bytes_wasted_ -= WastedBytes(it->second.value.data);
  lru_.erase(it->second.lru_it);
  map_.erase(it);  // frees the slab chunk immediately — global lock held
}

void LockedEngine::RechargeLocked(std::size_t old_footprint,
                                  std::size_t old_size,
                                  const CacheValue& value) {
  bytes_ += value.data.footprint() - old_footprint;
  bytes_wasted_ +=
      (value.data.footprint() - value.data.size()) - (old_footprint - old_size);
}

void LockedEngine::EvictForChunkLocked(std::size_t data_size,
                                       const std::string* keep) {
  if (slab_.HasAvailable(data_size)) {
    return;
  }
  // Class-targeted (memcached's "evict to make room in the slab class"
  // under the global lock): scan coldest-first for items whose chunk
  // belongs to the dry class — evicting anything else frees chunks the
  // needy class can never receive. Frees recycle immediately here (no
  // grace period), so one matching victim is enough; the scan is bounded
  // because a single LRU (unlike memcached's per-class LRUs) has no index
  // by class. `keep` protects the item an in-place overwrite is about to
  // mutate (its iterator must survive). If no match is in reach the
  // allocation falls back to the heap, still charged exactly.
  constexpr std::size_t kScanBound = 128;
  const std::size_t needed = slab_.FootprintFor(data_size);
  std::size_t scanned = 0;
  auto it = lru_.end();
  while (it != lru_.begin() && scanned < kScanBound &&
         !slab_.HasAvailable(data_size)) {
    --it;  // walk coldest-first
    ++scanned;
    if (keep != nullptr && *it == *keep) {
      continue;
    }
    auto victim = map_.find(*it);
    if (victim == map_.end() ||
        victim->second.value.data.footprint() != needed) {
      continue;
    }
    // Erasing invalidates the node `it` points at; resume from its
    // successor so the next step lands on the element before it.
    auto resume = std::next(it);
    EraseLocked(victim);
    ++stats_.evictions;
    it = resume;
  }
}

template <typename K>
void LockedEngine::StoreLocked(const K& key, std::string_view data,
                               std::uint32_t flags, std::int64_t exptime) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    StoreAtLocked(it, data, flags, exptime);
    return;
  }
  const std::int64_t now = NowSeconds();
  EvictForChunkLocked(data.size());
  CacheValue value(SlabBuffer(&slab_, data), flags, ResolveExptime(exptime, now),
                   next_cas_++);
  value.stored_at = now;
  value.last_used.store(now, std::memory_order_relaxed);
  bytes_ += ChargedBytes(key.size(), value.data);
  bytes_wasted_ += WastedBytes(value.data);
  lru_.push_front(std::string(key));
  map_.emplace(lru_.front(), Entry{std::move(value), lru_.begin()});
  ++stats_.total_items;
  EvictIfNeededLocked();
  ++stats_.sets;
}

void LockedEngine::StoreAtLocked(Map::iterator it, std::string_view data,
                                 std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  // MRU first: the class-exhaustion sweep below must never evict the item
  // this iterator points at.
  TouchLruLocked(it);
  // Assign reuses the current chunk in place exactly when the new size
  // stays in its class (equal footprints); only a class change actually
  // allocates, so only then is the exhaustion sweep allowed to evict.
  if (slab_.FootprintFor(data.size()) != it->second.value.data.footprint()) {
    EvictForChunkLocked(data.size(), &it->first);
  }
  CacheValue& value = it->second.value;
  const std::size_t old_footprint = value.data.footprint();
  const std::size_t old_size = value.data.size();
  // In-place overwrite under the global lock (no reader can hold a
  // reference): reuses the chunk when the new size stays in its class.
  value.data.Assign(&slab_, data);
  RechargeLocked(old_footprint, old_size, value);
  value.flags = flags;
  value.expire_at = ResolveExptime(exptime, now);
  value.cas = next_cas_++;
  value.stored_at = now;
  value.last_used.store(now, std::memory_order_relaxed);
  EvictIfNeededLocked();
  ++stats_.sets;
}

void LockedEngine::EvictIfNeededLocked() {
  if (config_.max_items == 0 && config_.max_bytes == 0) {
    return;
  }
  const auto over = [&] {
    return (config_.max_items != 0 && map_.size() > config_.max_items) ||
           (config_.max_bytes != 0 && bytes_ > config_.max_bytes);
  };
  while (over() && !lru_.empty()) {
    auto victim = map_.find(lru_.back());
    if (victim != map_.end()) {
      EraseLocked(victim);
      ++stats_.evictions;
    } else {
      lru_.pop_back();
    }
  }
}

template <typename K>
bool LockedEngine::GetLocked(const K& key, std::int64_t now,
                             StoredValue* out) {
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    ++stats_.get_misses;
    return false;
  }
  // Exact LRU: the GET path mutates shared state, which is why default
  // memcached cannot drop the lock here.
  TouchLruLocked(it);
  CacheValue& value = it->second.value;
  // Meta-flag metadata reports the PRE-get state (prior access time,
  // prior fetched bit), captured before this GET stamps both.
  out->expire_at = value.expire_at;
  out->last_used = value.last_used.load(std::memory_order_relaxed);
  out->fetched = value.fetched.load(std::memory_order_relaxed);
  value.last_used.store(now, std::memory_order_relaxed);
  value.fetched.store(true, std::memory_order_relaxed);
  const std::string_view data = value.data.view();
  out->data.assign(data.data(), data.size());
  out->flags = value.flags;
  out->cas = value.cas;
  ++stats_.get_hits;
  return true;
}

bool LockedEngine::Get(const std::string& key, StoredValue* out) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return GetLocked(key, now, out);
}

void LockedEngine::GetMany(const std::string_view* keys, std::size_t count,
                           MultiGetResult* out) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].hit = GetLocked(keys[i], now, &out[i].value);
  }
}

void LockedEngine::GetManyScratch(const std::string_view* keys,
                                  std::size_t count, ScratchGetResult* out,
                                  std::string* scratch) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ScratchGetResult{};
    auto it = FindLiveLocked(keys[i], now);
    if (it == map_.end()) {
      ++stats_.get_misses;
      continue;
    }
    TouchLruLocked(it);
    CacheValue& value = it->second.value;
    ScratchGetResult& slot = out[i];
    slot.hit = true;
    const std::string_view data = value.data.view();
    slot.data_offset = scratch->size();
    slot.data_size = data.size();
    scratch->append(data.data(), data.size());
    slot.flags = value.flags;
    slot.cas = value.cas;
    slot.expire_at = value.expire_at;
    slot.last_used = value.last_used.load(std::memory_order_relaxed);
    slot.fetched = value.fetched.load(std::memory_order_relaxed);
    value.last_used.store(now, std::memory_order_relaxed);
    value.fetched.store(true, std::memory_order_relaxed);
    ++stats_.get_hits;
  }
}

StoreResult LockedEngine::Set(const std::string& key, std::string_view data,
                              std::uint32_t flags, std::int64_t exptime) {
  std::lock_guard<StoreMutex> lock(mutex_);
  StoreLocked(key, data, flags, exptime);
  return StoreResult::kStored;
}

template <typename K>
StoreResult LockedEngine::AddOpLocked(const K& key, std::string_view data,
                                      std::uint32_t flags, std::int64_t exptime,
                                      std::int64_t now) {
  if (FindLiveLocked(key, now) != map_.end()) {
    return StoreResult::kNotStored;
  }
  StoreLocked(key, data, flags, exptime);
  return StoreResult::kStored;
}

template <typename K>
StoreResult LockedEngine::ReplaceOpLocked(const K& key, std::string_view data,
                                          std::uint32_t flags,
                                          std::int64_t exptime,
                                          std::int64_t now) {
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotStored;
  }
  StoreAtLocked(it, data, flags, exptime);
  return StoreResult::kStored;
}

template <typename K>
StoreResult LockedEngine::ConcatOpLocked(const K& key, std::string_view data,
                                         bool prepend, std::int64_t now) {
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotStored;
  }
  if (it->second.value.data.size() + data.size() > kMaxItemBytes) {
    return StoreResult::kNotStored;  // would exceed item_size_max
  }
  CacheValue& value = it->second.value;
  const std::size_t old_footprint = value.data.footprint();
  const std::size_t old_size = value.data.size();
  if (prepend) {
    value.data.Prepend(&slab_, data);
  } else {
    value.data.Append(&slab_, data);
  }
  RechargeLocked(old_footprint, old_size, value);
  value.cas = next_cas_++;
  TouchLruLocked(it);
  EvictIfNeededLocked();
  ++stats_.sets;
  return StoreResult::kStored;
}

template <typename K>
StoreResult LockedEngine::CasOpLocked(const K& key, std::string_view data,
                                      std::uint32_t flags, std::int64_t exptime,
                                      std::uint64_t expected_cas,
                                      std::int64_t now) {
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotFound;
  }
  if (it->second.value.cas != expected_cas) {
    return StoreResult::kExists;
  }
  StoreAtLocked(it, data, flags, exptime);
  return StoreResult::kStored;
}

StoreResult LockedEngine::Add(const std::string& key, std::string_view data,
                              std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return AddOpLocked(key, data, flags, exptime, now);
}

StoreResult LockedEngine::Replace(const std::string& key, std::string_view data,
                                  std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return ReplaceOpLocked(key, data, flags, exptime, now);
}

StoreResult LockedEngine::Append(const std::string& key,
                                 std::string_view data) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return ConcatOpLocked(key, data, /*prepend=*/false, now);
}

StoreResult LockedEngine::Prepend(const std::string& key,
                                  std::string_view data) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return ConcatOpLocked(key, data, /*prepend=*/true, now);
}

StoreResult LockedEngine::CheckAndSet(const std::string& key,
                                      std::string_view data,
                                      std::uint32_t flags, std::int64_t exptime,
                                      std::uint64_t expected_cas) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  return CasOpLocked(key, data, flags, exptime, expected_cas, now);
}

void LockedEngine::StoreMany(const StoreOp* ops, std::size_t count,
                             StoreResult* results) {
  if (count == 0) {
    return;
  }
  const std::int64_t now = NowSeconds();
  // The whole burst under ONE global-lock acquisition: this engine's
  // per-batch override of the one-mutex-per-op baseline, keeping the
  // pipelined fig5 contrast symmetric with the RP engine's shard groups.
  std::lock_guard<StoreMutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    const StoreOp& op = ops[i];
    switch (op.kind) {
      case StoreKind::kSet:
        StoreLocked(op.key, op.data, op.flags, op.exptime);
        results[i] = StoreResult::kStored;
        break;
      case StoreKind::kAdd:
        results[i] = AddOpLocked(op.key, op.data, op.flags, op.exptime, now);
        break;
      case StoreKind::kReplace:
        results[i] =
            ReplaceOpLocked(op.key, op.data, op.flags, op.exptime, now);
        break;
      case StoreKind::kAppend:
        results[i] = ConcatOpLocked(op.key, op.data, /*prepend=*/false, now);
        break;
      case StoreKind::kPrepend:
        results[i] = ConcatOpLocked(op.key, op.data, /*prepend=*/true, now);
        break;
      case StoreKind::kCas:
        results[i] =
            CasOpLocked(op.key, op.data, op.flags, op.exptime, op.cas, now);
        break;
      case StoreKind::kDelete: {
        // md rides the store batch: same lock acquisition, but the result
        // is delete semantics (kStored = deleted, kNotFound = miss) and it
        // must not count toward `sets`.
        auto it = FindLiveLocked(op.key, now);
        if (it == map_.end()) {
          results[i] = StoreResult::kNotFound;
        } else {
          EraseLocked(it);
          results[i] = StoreResult::kStored;
        }
        break;
      }
    }
  }
  if (count >= 2) {
    ++stats_.store_batches;
    stats_.store_batched_ops += count;
  }
}

bool LockedEngine::Delete(const std::string& key) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return false;
  }
  EraseLocked(it);
  return true;
}

ArithResult LockedEngine::ArithLocked(const std::string& key,
                                      std::uint64_t delta, bool increment) {
  const std::int64_t now = NowSeconds();
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return {ArithStatus::kNotFound, 0};
  }
  std::uint64_t current = 0;
  if (!ParseUint64(it->second.value.data.view(), &current)) {
    return {ArithStatus::kNonNumeric, 0};
  }
  const std::uint64_t next =
      increment ? current + delta : (current >= delta ? current - delta : 0);
  char digits[20];
  auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), next);
  (void)ec;  // a uint64 always fits 20 digits
  CacheValue& value = it->second.value;
  const std::size_t old_footprint = value.data.footprint();
  const std::size_t old_size = value.data.size();
  value.data.Assign(
      &slab_, std::string_view(digits, static_cast<std::size_t>(end - digits)));
  RechargeLocked(old_footprint, old_size, value);
  value.cas = next_cas_++;
  TouchLruLocked(it);
  EvictIfNeededLocked();
  return {ArithStatus::kOk, next};
}

ArithResult LockedEngine::Incr(const std::string& key, std::uint64_t delta) {
  std::lock_guard<StoreMutex> lock(mutex_);
  return ArithLocked(key, delta, /*increment=*/true);
}

ArithResult LockedEngine::Decr(const std::string& key, std::uint64_t delta) {
  std::lock_guard<StoreMutex> lock(mutex_);
  return ArithLocked(key, delta, /*increment=*/false);
}

bool LockedEngine::Touch(const std::string& key, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<StoreMutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return false;
  }
  it->second.value.expire_at = ResolveExptime(exptime, now);
  TouchLruLocked(it);
  return true;
}

void LockedEngine::FlushAll(std::int64_t delay_seconds) {
  std::lock_guard<StoreMutex> lock(mutex_);
  if (delay_seconds > 0) {
    // Logical flush: items stored before the deadline die once it passes
    // and are reclaimed lazily by FindLiveLocked. The delay follows the
    // protocol's exptime conventions (<= 30 days relative, else absolute).
    flush_at_ = ResolveExptime(delay_seconds, NowSeconds());
    return;
  }
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  bytes_wasted_ = 0;
  flush_at_ = kNoFlush;
}

std::size_t LockedEngine::ItemCount() const {
  std::lock_guard<StoreMutex> lock(mutex_);
  return map_.size();
}

EngineStats LockedEngine::Stats() const {
  std::lock_guard<StoreMutex> lock(mutex_);
  EngineStats stats = stats_;
  stats.items = map_.size();
  stats.bytes = bytes_;
  stats.bytes_wasted = bytes_wasted_;
  stats.limit_maxbytes = config_.max_bytes;
  const SlabStats slab = slab_.Stats();
  stats.slab_reserved = slab.bytes_reserved;
  stats.slab_fallbacks = slab.fallback_allocs;
  stats.slab_pages_moved = slab.pages_moved;
  // Reclaimer health is process-global (one RCU domain, one callback
  // queue); the locked engine reports the same numbers the RP engine does.
  // Its own maintenance counters (promotions, front hits, combines,
  // crawls) stay zero — the maintenance plane is an RP-engine subsystem.
  rcu::RcuCallbackQueue& reclaimer = rcu::Epoch::Callbacks();
  stats.reclaimer_pending = reclaimer.pending();
  stats.reclaimer_wakeups = reclaimer.wakeups();
  stats.reclaimer_inline_pumps = reclaimer.inline_pumps();
  FillMetaCommandStats(&stats);
  return stats;
}

}  // namespace rp::memcache
