#include "src/memcache/locked_engine.h"

#include <charconv>

namespace rp::memcache {

namespace {

bool ParseUint64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

LockedEngine::LockedEngine(EngineConfig config) : config_(config) {
  map_.reserve(config_.initial_buckets);
}

LockedEngine::Map::iterator LockedEngine::FindLiveLocked(const std::string& key,
                                                         std::int64_t now) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return map_.end();
  }
  if (!IsLive(it->second.value, flush_at_, now)) {
    ++stats_.expired_reclaims;
    EraseLocked(it);
    return map_.end();
  }
  return it;
}

void LockedEngine::TouchLruLocked(Map::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void LockedEngine::EraseLocked(Map::iterator it) {
  bytes_ -= ChargedBytes(it->first.size(), it->second.value.data.size());
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void LockedEngine::StoreLocked(const std::string& key, std::string data,
                               std::uint32_t flags, std::int64_t exptime) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    StoreAtLocked(it, std::move(data), flags, exptime);
    return;
  }
  const std::int64_t now = NowSeconds();
  const std::size_t new_charge = ChargedBytes(key.size(), data.size());
  CacheValue value(std::move(data), flags, ResolveExptime(exptime, now),
                   next_cas_++);
  value.stored_at = now;
  value.last_used.store(now, std::memory_order_relaxed);
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(value), lru_.begin()});
  bytes_ += new_charge;
  ++stats_.total_items;
  EvictIfNeededLocked();
  ++stats_.sets;
}

void LockedEngine::StoreAtLocked(Map::iterator it, std::string data,
                                 std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  const std::string& key = it->first;
  const std::size_t new_charge = ChargedBytes(key.size(), data.size());
  CacheValue value(std::move(data), flags, ResolveExptime(exptime, now),
                   next_cas_++);
  value.stored_at = now;
  value.last_used.store(now, std::memory_order_relaxed);
  bytes_ += new_charge - ChargedBytes(key.size(), it->second.value.data.size());
  it->second.value = std::move(value);
  TouchLruLocked(it);
  EvictIfNeededLocked();
  ++stats_.sets;
}

void LockedEngine::EvictIfNeededLocked() {
  if (config_.max_items == 0 && config_.max_bytes == 0) {
    return;
  }
  const auto over = [&] {
    return (config_.max_items != 0 && map_.size() > config_.max_items) ||
           (config_.max_bytes != 0 && bytes_ > config_.max_bytes);
  };
  while (over() && !lru_.empty()) {
    auto victim = map_.find(lru_.back());
    if (victim != map_.end()) {
      EraseLocked(victim);
      ++stats_.evictions;
    } else {
      lru_.pop_back();
    }
  }
}

bool LockedEngine::GetLocked(const std::string& key, std::int64_t now,
                             StoredValue* out) {
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    ++stats_.get_misses;
    return false;
  }
  // Exact LRU: the GET path mutates shared state, which is why default
  // memcached cannot drop the lock here.
  TouchLruLocked(it);
  it->second.value.last_used.store(now, std::memory_order_relaxed);
  out->data = it->second.value.data;
  out->flags = it->second.value.flags;
  out->cas = it->second.value.cas;
  ++stats_.get_hits;
  return true;
}

bool LockedEngine::Get(const std::string& key, StoredValue* out) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  return GetLocked(key, now, out);
}

void LockedEngine::GetMany(const std::string* keys, std::size_t count,
                           MultiGetResult* out) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].hit = GetLocked(keys[i], now, &out[i].value);
  }
}

StoreResult LockedEngine::Set(const std::string& key, std::string data,
                              std::uint32_t flags, std::int64_t exptime) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreLocked(key, std::move(data), flags, exptime);
  return StoreResult::kStored;
}

StoreResult LockedEngine::Add(const std::string& key, std::string data,
                              std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  if (FindLiveLocked(key, now) != map_.end()) {
    return StoreResult::kNotStored;
  }
  StoreLocked(key, std::move(data), flags, exptime);
  return StoreResult::kStored;
}

StoreResult LockedEngine::Replace(const std::string& key, std::string data,
                                  std::uint32_t flags, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotStored;
  }
  StoreAtLocked(it, std::move(data), flags, exptime);
  return StoreResult::kStored;
}

StoreResult LockedEngine::Append(const std::string& key, const std::string& data) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotStored;
  }
  it->second.value.data.append(data);
  it->second.value.cas = next_cas_++;
  bytes_ += data.size();
  TouchLruLocked(it);
  EvictIfNeededLocked();
  ++stats_.sets;
  return StoreResult::kStored;
}

StoreResult LockedEngine::Prepend(const std::string& key, const std::string& data) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotStored;
  }
  it->second.value.data.insert(0, data);
  it->second.value.cas = next_cas_++;
  bytes_ += data.size();
  TouchLruLocked(it);
  EvictIfNeededLocked();
  ++stats_.sets;
  return StoreResult::kStored;
}

StoreResult LockedEngine::CheckAndSet(const std::string& key, std::string data,
                                      std::uint32_t flags, std::int64_t exptime,
                                      std::uint64_t expected_cas) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return StoreResult::kNotFound;
  }
  if (it->second.value.cas != expected_cas) {
    return StoreResult::kExists;
  }
  StoreAtLocked(it, std::move(data), flags, exptime);
  return StoreResult::kStored;
}

bool LockedEngine::Delete(const std::string& key) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return false;
  }
  EraseLocked(it);
  return true;
}

ArithResult LockedEngine::ArithLocked(const std::string& key,
                                      std::uint64_t delta, bool increment) {
  const std::int64_t now = NowSeconds();
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return {ArithStatus::kNotFound, 0};
  }
  std::uint64_t current = 0;
  if (!ParseUint64(it->second.value.data, &current)) {
    return {ArithStatus::kNonNumeric, 0};
  }
  const std::uint64_t next =
      increment ? current + delta : (current >= delta ? current - delta : 0);
  std::string serialized = std::to_string(next);
  bytes_ += serialized.size() - it->second.value.data.size();
  it->second.value.data = std::move(serialized);
  it->second.value.cas = next_cas_++;
  TouchLruLocked(it);
  EvictIfNeededLocked();
  return {ArithStatus::kOk, next};
}

ArithResult LockedEngine::Incr(const std::string& key, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ArithLocked(key, delta, /*increment=*/true);
}

ArithResult LockedEngine::Decr(const std::string& key, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ArithLocked(key, delta, /*increment=*/false);
}

bool LockedEngine::Touch(const std::string& key, std::int64_t exptime) {
  const std::int64_t now = NowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = FindLiveLocked(key, now);
  if (it == map_.end()) {
    return false;
  }
  it->second.value.expire_at = ResolveExptime(exptime, now);
  TouchLruLocked(it);
  return true;
}

void LockedEngine::FlushAll(std::int64_t delay_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (delay_seconds > 0) {
    // Logical flush: items stored before the deadline die once it passes
    // and are reclaimed lazily by FindLiveLocked. The delay follows the
    // protocol's exptime conventions (<= 30 days relative, else absolute).
    flush_at_ = ResolveExptime(delay_seconds, NowSeconds());
    return;
  }
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  flush_at_ = kNoFlush;
}

std::size_t LockedEngine::ItemCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

EngineStats LockedEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStats stats = stats_;
  stats.items = map_.size();
  stats.bytes = bytes_;
  stats.limit_maxbytes = config_.max_bytes;
  return stats;
}

}  // namespace rp::memcache
