#include "src/memcache/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <vector>

namespace rp::memcache {

namespace {

StoreKind StoreKindOf(Op op) {
  switch (op) {
    case Op::kSet:
      return StoreKind::kSet;
    case Op::kAdd:
      return StoreKind::kAdd;
    case Op::kReplace:
      return StoreKind::kReplace;
    case Op::kAppend:
      return StoreKind::kAppend;
    case Op::kPrepend:
      return StoreKind::kPrepend;
    default:
      return StoreKind::kCas;
  }
}

// ms/md → StoreKind: md is a delete; ms maps its M<mode> onto the classic
// store kinds (E=add, A=append, P=prepend, R=replace, S/absent=set), and a
// C<cas> compare turns it into a cas store (the parser rejects C combined
// with any non-set mode).
StoreKind MetaStoreKind(const Request& request) {
  if (request.op == Op::kMetaDelete) {
    return StoreKind::kDelete;
  }
  if (request.meta.has_cas_compare) {
    return StoreKind::kCas;
  }
  switch (request.meta.mode) {
    case 'E':
      return StoreKind::kAdd;
    case 'A':
      return StoreKind::kAppend;
    case 'P':
      return StoreKind::kPrepend;
    case 'R':
      return StoreKind::kReplace;
    default:
      return StoreKind::kSet;  // 'S' or no mode flag
  }
}

// After a vivify/fallback Get, mirror the StoredValue into a scratch slot
// so the response codec sees one shape on every mg path.
void FillScratchSlot(ScratchGetResult* slot, const StoredValue& value,
                     std::string* scratch) {
  slot->hit = true;
  slot->data_offset = scratch->size();
  slot->data_size = value.data.size();
  scratch->append(value.data);
  slot->flags = value.flags;
  slot->cas = value.cas;
  slot->expire_at = value.expire_at;
  slot->last_used = value.last_used;
  slot->fetched = value.fetched;
}

}  // namespace

std::int64_t MonotonicMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ExecuteRequest(CacheEngine& engine, const Request& request,
                    std::string* out, bool* quit,
                    const ServerConnectionStats* conn_stats) {
  *quit = false;
  switch (request.op) {
    case Op::kGet:
    case Op::kGets: {
      const bool with_cas = request.op == Op::kGets;
      if (request.keys.size() == 1) {
        StoredValue value;
        if (engine.Get(request.keys[0], &value)) {
          AppendValueResponse(out, request.keys[0], value, with_cas);
        }
      } else {
        // Batched multi-get: one engine call for the whole key list lets
        // the engine amortize per-op costs (the RP engine opens a single
        // read-side critical section per shard group). Keys go down as
        // string_views over the parsed request — the engines' hashers and
        // table lookups are transparent, so no key is copied per lookup.
        // Responses still go out in request order, misses silently
        // skipped, per protocol. Thread-local scratch: slots (and their
        // strings' capacity) are reused across requests, so steady-state
        // batches allocate nothing here. Safe because ExecuteRequest
        // never re-enters itself.
        static thread_local std::vector<std::string_view> key_views;
        static thread_local std::vector<MultiGetResult> results;
        key_views.clear();
        for (const std::string& key : request.keys) {
          key_views.push_back(key);
        }
        if (results.size() < request.keys.size()) {
          results.resize(request.keys.size());
        }
        engine.GetMany(key_views.data(), key_views.size(), results.data());
        for (std::size_t i = 0; i < request.keys.size(); ++i) {
          if (results[i].hit) {
            AppendValueResponse(out, request.keys[i], results[i].value,
                                with_cas);
          }
        }
      }
      out->append(kResponseEnd);
      return;
    }
    case Op::kVersion:
      AppendVersionResponse(out, "rp-memcache 1.0");
      return;
    case Op::kStats: {
      const EngineStats stats = engine.Stats();
      AppendStat(out, "engine", engine.Name());
      AppendStat(out, "get_hits", stats.get_hits);
      AppendStat(out, "get_misses", stats.get_misses);
      AppendStat(out, "cmd_set", stats.sets);
      AppendStat(out, "evictions", stats.evictions);
      AppendStat(out, "expired_unfetched", stats.expired_reclaims);
      AppendStat(out, "curr_items", stats.items);
      AppendStat(out, "total_items", stats.total_items);
      AppendStat(out, "bytes", stats.bytes);
      // Exact-accounting extras: the slab-fragmentation share of `bytes`,
      // page memory the slab arenas hold, and how often the pool was dry
      // enough to fall back to the heap.
      AppendStat(out, "bytes_wasted", stats.bytes_wasted);
      AppendStat(out, "slab_reserved", stats.slab_reserved);
      AppendStat(out, "slab_fallbacks", stats.slab_fallbacks);
      // Batched-store observability: StoreMany calls that carried 2+ ops,
      // and the ops they carried (see docs/PROTOCOL.md).
      AppendStat(out, "store_batches", stats.store_batches);
      AppendStat(out, "store_batched_ops", stats.store_batched_ops);
      // Maintenance-plane observability (see docs/PROTOCOL.md): hot-key
      // front cache, write combining, slab automove, expired-item crawl,
      // and the health of the process-wide deferred reclaimer.
      AppendStat(out, "hot_key_promotions", stats.hot_key_promotions);
      AppendStat(out, "front_cache_hits", stats.front_cache_hits);
      AppendStat(out, "set_combines", stats.set_combines);
      AppendStat(out, "slab_pages_moved", stats.slab_pages_moved);
      AppendStat(out, "crawler_reclaims", stats.crawler_reclaims);
      AppendStat(out, "reclaimer_pending", stats.reclaimer_pending);
      AppendStat(out, "reclaimer_wakeups", stats.reclaimer_wakeups);
      AppendStat(out, "reclaimer_inline_pumps", stats.reclaimer_inline_pumps);
      // Meta-protocol command counters (see docs/PROTOCOL.md): one bump
      // per meta request executed, counted at the dispatch layer.
      AppendStat(out, "cmd_mg", stats.cmd_mg);
      AppendStat(out, "cmd_ms", stats.cmd_ms);
      AppendStat(out, "cmd_md", stats.cmd_md);
      AppendStat(out, "cmd_ma", stats.cmd_ma);
      AppendStat(out, "limit_maxbytes", stats.limit_maxbytes);
      if (conn_stats != nullptr) {
        AppendStat(out, "curr_connections", conn_stats->curr_connections);
        AppendStat(out, "total_connections", conn_stats->total_connections);
      }
      out->append(kResponseEnd);
      return;
    }
    case Op::kQuit:
      *quit = true;
      return;
    case Op::kMetaNoop:
      // Pipeline barrier: always answers, so a blocking client can bound a
      // quiet run (`mg..q ×k, mn`) and know every response has arrived.
      out->append(kResponseMetaNoop);
      return;
    case Op::kMetaGet:
      // A lone mg is just a batch of one — same scratch path, same
      // response assembly, so singleton and pipelined mg agree byte for
      // byte.
      ExecuteMetaGetBatch(engine, &request, 1, out);
      return;
    case Op::kMetaSet:
    case Op::kMetaDelete:
      // Same unification for ms/md: the batch-of-one goes through the
      // shared StoreOp mapping and meta response codec.
      ExecuteStoreBatch(engine, &request, 1, out);
      return;
    case Op::kMetaArith: {
      engine.CountMetaCommand(CacheEngine::MetaCmd::kArith);
      const bool incr = request.meta.mode == 0 || request.meta.mode == 'I' ||
                        request.meta.mode == '+';
      ArithResult result = incr ? engine.Incr(request.keys[0], request.delta)
                                : engine.Decr(request.keys[0], request.delta);
      if (result.status == ArithStatus::kNotFound && request.meta.has_vivify) {
        // Autovivify (N with optional J seed): the seeded value IS the
        // answer — no delta applied on the vivifying op (memcached rule).
        // Losing the add race means someone else vivified; retry the op
        // against their value.
        const std::string init = std::to_string(request.meta.init_value);
        if (engine.Add(request.keys[0], init, 0, request.meta.vivify_ttl) ==
            StoreResult::kStored) {
          result.status = ArithStatus::kOk;
          result.value = request.meta.init_value;
        } else {
          result = incr ? engine.Incr(request.keys[0], request.delta)
                        : engine.Decr(request.keys[0], request.delta);
        }
      }
      if (result.ok() && request.meta.has_exptime) {
        engine.Touch(request.keys[0], request.exptime);  // ma T<ttl>
      }
      AppendMetaArithResponse(out, request.keys[0], request, result);
      return;
    }
    default:
      break;
  }

  // Single-token commands. They all honour noreply: the response is
  // assembled in place and truncated away when suppressed (cheaper than a
  // temporary string on the common non-noreply path).
  const std::size_t mark = out->size();
  switch (request.op) {
    case Op::kSet:
      engine.Set(request.keys[0], request.data, request.flags, request.exptime);
      out->append(kResponseStored);
      break;
    case Op::kAdd:
      out->append(engine.Add(request.keys[0], request.data, request.flags,
                             request.exptime) == StoreResult::kStored
                      ? kResponseStored
                      : kResponseNotStored);
      break;
    case Op::kReplace:
      out->append(engine.Replace(request.keys[0], request.data, request.flags,
                                 request.exptime) == StoreResult::kStored
                      ? kResponseStored
                      : kResponseNotStored);
      break;
    case Op::kAppend:
      out->append(engine.Append(request.keys[0], request.data) ==
                          StoreResult::kStored
                      ? kResponseStored
                      : kResponseNotStored);
      break;
    case Op::kPrepend:
      out->append(engine.Prepend(request.keys[0], request.data) ==
                          StoreResult::kStored
                      ? kResponseStored
                      : kResponseNotStored);
      break;
    case Op::kCas:
      switch (engine.CheckAndSet(request.keys[0], request.data, request.flags,
                                 request.exptime, request.cas)) {
        case StoreResult::kStored:
          out->append(kResponseStored);
          break;
        case StoreResult::kExists:
          out->append(kResponseExists);
          break;
        default:
          out->append(kResponseNotFound);
          break;
      }
      break;
    case Op::kDelete:
      out->append(engine.Delete(request.keys[0]) ? kResponseDeleted
                                                 : kResponseNotFound);
      break;
    case Op::kIncr:
    case Op::kDecr: {
      const ArithResult result =
          request.op == Op::kIncr ? engine.Incr(request.keys[0], request.delta)
                                  : engine.Decr(request.keys[0], request.delta);
      switch (result.status) {
        case ArithStatus::kOk:
          AppendNumberResponse(out, result.value);
          break;
        case ArithStatus::kNotFound:
          out->append(kResponseNotFound);
          break;
        case ArithStatus::kNonNumeric:
          AppendClientError(out, kNonNumericMessage);
          break;
      }
      break;
    }
    case Op::kTouch:
      out->append(engine.Touch(request.keys[0], request.exptime)
                      ? kResponseTouched
                      : kResponseNotFound);
      break;
    case Op::kFlushAll:
      engine.FlushAll(request.exptime);  // exptime carries the [delay] arg
      out->append(kResponseOk);
      break;
    default:
      break;  // multi-part ops handled above
  }
  if (request.noreply) {
    out->resize(mark);
  }
}

bool IsBatchableStore(const Request& request) {
  switch (request.op) {
    case Op::kSet:
    case Op::kAdd:
    case Op::kReplace:
    case Op::kAppend:
    case Op::kPrepend:
    case Op::kCas:
    case Op::kMetaSet:
    case Op::kMetaDelete:
      return request.keys.size() == 1;
    default:
      return false;
  }
}

void ExecuteStoreBatch(CacheEngine& engine, const Request* requests,
                       std::size_t count, std::string* out) {
  // Typical bursts fit the stack; only pathological pipelines spill.
  constexpr std::size_t kInline = 64;
  StoreOp inline_ops[kInline];
  StoreResult inline_results[kInline];
  std::vector<StoreOp> heap_ops;
  std::vector<StoreResult> heap_results;
  StoreOp* ops = inline_ops;
  StoreResult* results = inline_results;
  if (count > kInline) {
    heap_ops.resize(count);
    heap_results.resize(count);
    ops = heap_ops.data();
    results = heap_results.data();
  }
  std::uint64_t meta_sets = 0;
  std::uint64_t meta_deletes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Request& request = requests[i];
    StoreOp& op = ops[i];
    if (IsMetaOp(request.op)) {
      op.kind = MetaStoreKind(request);
      if (request.op == Op::kMetaSet) {
        ++meta_sets;
      } else {
        ++meta_deletes;
      }
    } else {
      op.kind = StoreKindOf(request.op);
    }
    op.key = request.keys[0];
    op.data = request.data;
    op.flags = request.flags;
    op.exptime = request.exptime;
    op.cas = request.cas;
  }
  engine.StoreMany(ops, count, results);
  if (meta_sets != 0) {
    engine.CountMetaCommand(CacheEngine::MetaCmd::kSet, meta_sets);
  }
  if (meta_deletes != 0) {
    engine.CountMetaCommand(CacheEngine::MetaCmd::kDelete, meta_deletes);
  }
  // Wire responses, identical to the per-op ExecuteRequest paths: set
  // always reports STORED, cas distinguishes EXISTS from NOT_FOUND, the
  // rest map kStored/!kStored to STORED/NOT_STORED. Meta requests answer
  // in meta grammar over the same StoreResult (q suppresses bare HD;
  // failures always answer).
  for (std::size_t i = 0; i < count; ++i) {
    if (IsMetaOp(requests[i].op)) {
      AppendMetaStoreResponse(out, requests[i].keys[0], requests[i],
                              results[i]);
      continue;
    }
    if (requests[i].noreply) {
      continue;
    }
    switch (ops[i].kind) {
      case StoreKind::kSet:
        out->append(kResponseStored);
        break;
      case StoreKind::kCas:
        switch (results[i]) {
          case StoreResult::kStored:
            out->append(kResponseStored);
            break;
          case StoreResult::kExists:
            out->append(kResponseExists);
            break;
          default:
            out->append(kResponseNotFound);
            break;
        }
        break;
      default:
        out->append(results[i] == StoreResult::kStored ? kResponseStored
                                                       : kResponseNotStored);
        break;
    }
  }
}

void ExecuteMetaGetBatch(CacheEngine& engine, const Request* requests,
                         std::size_t count, std::string* out) {
  if (count == 0) {
    return;
  }
  // Thread-local scratch reused across batches: the key views, the result
  // slots and the value bytes themselves — steady-state quiet runs
  // allocate nothing here. Results reference scratch by offset, so the
  // region may grow (vivified values append after the batch) without
  // invalidating earlier hits. Safe because this function never re-enters.
  static thread_local std::vector<std::string_view> key_views;
  static thread_local std::vector<ScratchGetResult> results;
  static thread_local std::string scratch;
  key_views.clear();
  scratch.clear();
  for (std::size_t i = 0; i < count; ++i) {
    key_views.push_back(requests[i].keys[0]);
  }
  if (results.size() < count) {
    results.resize(count);
  }
  // ONE engine call for the whole quiet run: on the RP engine this opens a
  // single epoch read section per shard group and copies each hit straight
  // into scratch inside it — the wire path's only copy of the value bytes
  // after this is the append into the output buffer.
  engine.GetManyScratch(key_views.data(), count, results.data(), &scratch);
  engine.CountMetaCommand(CacheEngine::MetaCmd::kGet, count);
  const std::int64_t now = NowSeconds();
  for (std::size_t i = 0; i < count; ++i) {
    const Request& request = requests[i];
    ScratchGetResult& r = results[i];
    if (!r.hit && request.meta.has_vivify) {
      // mg N<ttl>: a miss autovivifies an empty value and answers as a
      // hit. Add-then-Get: losing the add race just means another client
      // vivified first — their value is the answer either way.
      engine.Add(request.keys[0], "", 0, request.meta.vivify_ttl);
      StoredValue value;
      if (engine.Get(request.keys[0], &value)) {
        FillScratchSlot(&r, value, &scratch);
      }
    }
    if (r.hit && request.meta.has_exptime) {
      // mg T<ttl>: touch rides the get; the t response flag reports the
      // NEW deadline.
      if (engine.Touch(request.keys[0], request.exptime)) {
        r.expire_at = ResolveExptime(request.exptime, now);
      }
    }
    AppendMetaGetResponse(out, request.keys[0], request, r,
                          std::string_view(scratch.data() + r.data_offset,
                                           r.data_size),
                          now);
  }
}

RequestHandler::~RequestHandler() = default;

void EngineHandler::Execute(const Request& request, std::string* out,
                            bool* quit,
                            const ServerConnectionStats* conn_stats) {
  ExecuteRequest(engine_, request, out, quit, conn_stats);
}

void EngineHandler::ExecuteStores(const Request* requests, std::size_t count,
                                  std::string* out) {
  if (count == 1) {
    // A lone store skips the batch machinery entirely.
    bool quit = false;
    ExecuteRequest(engine_, requests[0], out, &quit);
    return;
  }
  ExecuteStoreBatch(engine_, requests, count, out);
}

void EngineHandler::ExecuteMetaGets(const Request* requests, std::size_t count,
                                    std::string* out) {
  ExecuteMetaGetBatch(engine_, requests, count, out);
}

Connection::Connection(int fd, RequestHandler& handler,
                       std::size_t write_high_water,
                       ConnectionCounters* counters)
    : fd_(fd),
      handler_(handler),
      write_high_water_(write_high_water),
      counters_(counters),
      last_active_ms_(MonotonicMs()) {}

Connection::~Connection() {
  ::close(fd_);
  if (counters_ != nullptr) {
    counters_->current.fetch_sub(1, std::memory_order_relaxed);
  }
}

bool Connection::OnReadable() {
  last_active_ms_ = MonotonicMs();
  char buf[16 * 1024];
  // Drain the socket, executing after each chunk so the backpressure check
  // sees the output produced so far: a pipelined blast stops being read
  // (and stops being executed) the moment its responses cross the
  // high-water mark, and TCP flow control pushes back on the client.
  while (!close_after_flush_ && !peer_eof_ && !reads_paused_) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      parser_.Feed(std::string_view(buf, static_cast<std::size_t>(n)));
      deferred_work_ = ExecuteBuffered();
      if (static_cast<std::size_t>(n) < sizeof(buf)) {
        break;  // socket drained (level-triggered epoll re-arms if not)
      }
      continue;
    }
    if (n == 0) {
      peer_eof_ = true;  // answer what we already read, flush, then close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;  // fatal socket error
  }
  if (!Pump()) {
    return false;
  }
  return !finished();
}

bool Connection::OnWritable() {
  last_active_ms_ = MonotonicMs();
  if (!Pump()) {
    return false;
  }
  return !finished();
}

bool Connection::Pump() {
  for (;;) {
    if (!FlushOutput()) {
      return false;
    }
    if (!deferred_work_ || close_after_flush_) {
      return true;
    }
    if (pending_output() > write_high_water_) {
      return true;  // still jammed: the next EPOLLOUT pumps again
    }
    deferred_work_ = ExecuteBuffered();
  }
}

bool Connection::ExecuteBuffered() {
  ServerConnectionStats snapshot;
  while (!close_after_flush_) {
    if (pending_output() > write_high_water_) {
      // Backpressure applies between pipelined requests too, or one read
      // chunk full of multi-gets could buffer responses without bound.
      // (A single response still buffers whole, however large.)
      FlushStoreBatch();  // the parser already consumed these; answer them
      FlushMetaGetBatch();
      UpdateBackpressure();
      return true;
    }
    Request request;
    const ParseStatus status = parser_.Next(&request);
    if (status == ParseStatus::kNeedMore) {
      break;
    }
    if (status == ParseStatus::kError) {
      FlushStoreBatch();  // burst responses precede the error, in order
      FlushMetaGetBatch();
      AppendClientError(&out_, parser_.error_message());
      continue;
    }
    if (request.op == Op::kMetaGet) {
      // Collect the pipelined mg run; it executes as one GetManyScratch
      // (one epoch section per shard group) when it ends — this is what
      // turns `mg <key> q`×k into classic-multiget engine cost.
      FlushStoreBatch();  // an mg ends any store burst
      meta_get_batch_.push_back(std::move(request));
      if (meta_get_batch_.size() >= kMaxStoreBatch) {
        FlushMetaGetBatch();
      }
      continue;
    }
    if (IsBatchableStore(request)) {
      // Collect the pipelined store burst; it executes as one StoreMany
      // (one store-mutex acquisition per shard group) when it ends.
      FlushMetaGetBatch();  // a store ends any mg burst
      store_batch_.push_back(std::move(request));
      if (store_batch_.size() >= kMaxStoreBatch) {
        FlushStoreBatch();
      }
      continue;
    }
    FlushStoreBatch();  // any other request ends both bursts
    FlushMetaGetBatch();
    const ServerConnectionStats* conn_stats = nullptr;
    if (request.op == Op::kStats && counters_ != nullptr) {
      snapshot.curr_connections =
          counters_->current.load(std::memory_order_relaxed);
      snapshot.total_connections =
          counters_->total.load(std::memory_order_relaxed);
      conn_stats = &snapshot;
    }
    bool quit = false;
    handler_.Execute(request, &out_, &quit, conn_stats);
    if (quit) {
      // Later pipelined requests are dropped, but responses already in
      // out_ still flush before the close.
      close_after_flush_ = true;
    }
  }
  FlushStoreBatch();  // input exhausted (or quit): answer what we have
  FlushMetaGetBatch();
  UpdateBackpressure();
  return false;
}

void Connection::FlushStoreBatch() {
  if (store_batch_.empty()) {
    return;
  }
  handler_.ExecuteStores(store_batch_.data(), store_batch_.size(), &out_);
  store_batch_.clear();
}

void Connection::FlushMetaGetBatch() {
  if (meta_get_batch_.empty()) {
    return;
  }
  handler_.ExecuteMetaGets(meta_get_batch_.data(), meta_get_batch_.size(),
                           &out_);
  meta_get_batch_.clear();
}

bool Connection::FlushOutput() {
  while (out_sent_ < out_.size()) {
    const ssize_t n = ::send(fd_, out_.data() + out_sent_,
                             out_.size() - out_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      out_sent_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;  // kernel buffer full; EPOLLOUT resumes the drain
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;  // peer reset / broken pipe
  }
  if (out_sent_ == out_.size()) {
    out_.clear();
    out_sent_ = 0;
  } else if (out_sent_ >= (1u << 16) && out_sent_ >= out_.size() / 2) {
    // Large flushed prefix: reclaim it so a long-lived slow reader doesn't
    // pin the connection's peak buffer forever.
    out_.erase(0, out_sent_);
    out_sent_ = 0;
  }
  UpdateBackpressure();
  return true;
}

void Connection::UpdateBackpressure() {
  const std::size_t pending = pending_output();
  if (!reads_paused_ && pending > write_high_water_) {
    reads_paused_ = true;
  } else if (reads_paused_ && pending <= write_high_water_ / 2) {
    // Hysteresis: resume at half the mark so a connection hovering at the
    // boundary doesn't thrash its epoll interest.
    reads_paused_ = false;
  }
}

}  // namespace rp::memcache
