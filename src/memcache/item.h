// Cache item model and expiry-time semantics for the mini-memcached.
#ifndef RP_MEMCACHE_ITEM_H_
#define RP_MEMCACHE_ITEM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/memcache/slab.h"

namespace rp::memcache {

// Key descriptor for the combined item layout (memcached's single-
// allocation item): the key bytes live in the trailing region of the same
// slab chunk that holds the table node, so this is just a pointer + length
// into that chunk — storing a key performs no allocation of its own. The
// descriptor is only ever compared/hashed through its string_view
// conversion, and the bytes it points at live exactly as long as the node
// that embeds it (chunks recycle only through deferred reclamation, so a
// reader inside an epoch section can never observe a reused key region).
struct ItemKey {
  const char* data = nullptr;
  std::uint32_t size = 0;

  operator std::string_view() const { return {data, size}; }
};

// Transparent equality over anything string_view-convertible: probes
// (std::string, std::string_view) and stored ItemKeys all funnel through
// one comparison, sidestepping C++20 rewritten-candidate ambiguity that a
// member operator== on ItemKey would invite.
struct ItemKeyEqual {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

// Seconds since the unix epoch, as memcached reckons time.
std::int64_t NowSeconds();

// memcached expiry convention: 0 = never; values up to 30 days are relative
// to now; larger values are absolute epoch seconds; negative = already
// expired.
std::int64_t ResolveExptime(std::int64_t exptime, std::int64_t now);

constexpr std::int64_t kNeverExpires = 0;

// Whether an item with the given resolved deadline is expired at `now`.
constexpr bool IsExpired(std::int64_t expire_at, std::int64_t now) {
  return expire_at != kNeverExpires && expire_at <= now;
}

// `flush_all [delay]` semantics (memcached's oldest_live rule): once the
// flush deadline passes, every item stored before the deadline is logically
// expired; items stored at or after the deadline survive. 0 = no flush
// pending.
constexpr std::int64_t kNoFlush = 0;

constexpr bool IsFlushed(std::int64_t stored_at, std::int64_t flush_at,
                         std::int64_t now) {
  return flush_at != kNoFlush && now >= flush_at && stored_at < flush_at;
}

// Fixed per-item overhead approximating the table node, hash/cas/expiry
// fields and eviction bookkeeping. Both engines use the same constant so
// byte accounting stays comparable across the fig5 series.
constexpr std::size_t kItemOverheadBytes = 64;

// Hard ceiling on a stored value's size, enforced by both engines on the
// append/prepend growth paths (a single data block is already capped at
// this by the protocol parser — RequestParser::kMaxValueLength — but
// appends accumulate). memcached's item_size_max plays the same role;
// it also keeps value sizes comfortably inside the slab header's 32-bit
// capacity field.
constexpr std::size_t kMaxItemBytes = 1024 * 1024;

// Per-item memory charge: the key, the fixed node overhead, and the
// *actual* heap footprint of the payload's slab chunk (header + chunk
// capacity — internal fragmentation included), not a modelled data size.
// The `waste` share (footprint minus stored bytes) is tracked separately
// so `stats` can report `bytes_wasted`.
inline std::size_t ChargedBytes(std::size_t key_size, const SlabBuffer& data) {
  return key_size + data.footprint() + kItemOverheadBytes;
}

inline std::size_t WastedBytes(const SlabBuffer& data) {
  return data.footprint() - data.size();
}

// The value record stored in the hash tables. Copyable (the relativistic
// engine's updates are copy-on-write; the copy lands in a fresh slab chunk
// so readers of the original are undisturbed); `last_used` is mutable +
// atomic so the lock-free GET fast path can stamp recency without a
// writer lock.
struct CacheValue {
  SlabBuffer data;
  std::uint32_t flags = 0;
  std::int64_t expire_at = kNeverExpires;
  std::uint64_t cas = 0;
  // When the value was last fully stored (set/add/replace/cas); compared
  // against the engine's flush deadline. Partial mutations (append, incr,
  // touch) preserve it so they can never revive a flushed item.
  std::int64_t stored_at = 0;
  mutable std::atomic<std::int64_t> last_used{0};
  // Whether any GET has ever fetched this value (memcached's ITEM_FETCHED,
  // surfaced by the meta protocol's `h` flag). Mutable + atomic for the
  // same reason as last_used: the lock-free GET path stamps it. Full
  // stores build a fresh CacheValue, which resets it; partial mutations
  // clone it through the copy constructors below.
  mutable std::atomic<bool> fetched{false};

  CacheValue() = default;
  CacheValue(SlabBuffer d, std::uint32_t f, std::int64_t e, std::uint64_t c)
      : data(std::move(d)), flags(f), expire_at(e), cas(c) {}

  CacheValue(const CacheValue& other)
      : data(other.data),
        flags(other.flags),
        expire_at(other.expire_at),
        cas(other.cas),
        stored_at(other.stored_at),
        last_used(other.last_used.load(std::memory_order_relaxed)),
        fetched(other.fetched.load(std::memory_order_relaxed)) {}

  CacheValue& operator=(const CacheValue& other) {
    if (this != &other) {
      data = other.data;
      flags = other.flags;
      expire_at = other.expire_at;
      cas = other.cas;
      stored_at = other.stored_at;
      last_used.store(other.last_used.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
      fetched.store(other.fetched.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }
    return *this;
  }

  CacheValue(CacheValue&& other) noexcept
      : data(std::move(other.data)),
        flags(other.flags),
        expire_at(other.expire_at),
        cas(other.cas),
        stored_at(other.stored_at),
        last_used(other.last_used.load(std::memory_order_relaxed)),
        fetched(other.fetched.load(std::memory_order_relaxed)) {}

  CacheValue& operator=(CacheValue&& other) noexcept {
    data = std::move(other.data);
    flags = other.flags;
    expire_at = other.expire_at;
    cas = other.cas;
    stored_at = other.stored_at;
    last_used.store(other.last_used.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    fetched.store(other.fetched.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    return *this;
  }

  // Copy of the bookkeeping fields with an *empty* payload buffer. The
  // combined-item clone path stages the payload bytes for embedding in
  // the new node's own chunk, so copying them through a temporary chunk
  // here would be a wasted allocate/copy/free round trip.
  static CacheValue MetadataCopy(const CacheValue& other) {
    CacheValue copy;
    copy.flags = other.flags;
    copy.expire_at = other.expire_at;
    copy.cas = other.cas;
    copy.stored_at = other.stored_at;
    copy.last_used.store(other.last_used.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    copy.fetched.store(other.fetched.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    return copy;
  }
};

// Combined liveness check: an item is dead when its TTL has lapsed or when
// a (possibly delayed) flush_all deadline has overtaken it.
inline bool IsLive(const CacheValue& value, std::int64_t flush_at,
                   std::int64_t now) {
  return !IsExpired(value.expire_at, now) &&
         !IsFlushed(value.stored_at, flush_at, now);
}

// What a GET hands back to the protocol layer (copied out of the engine).
// The metadata tail (expire_at / last_used / fetched) feeds the meta
// protocol's t / l / h response flags; both engines fill it on every hit.
struct StoredValue {
  std::string data;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::int64_t expire_at = kNeverExpires;
  std::int64_t last_used = 0;   // previous access time (before this GET)
  bool fetched = false;         // had been fetched before this GET
};

// One slot of a scratch-region multi-get (CacheEngine::GetManyScratch):
// instead of an owning std::string per hit, the value bytes are appended
// to a caller-provided scratch buffer inside the engine's read-side
// critical section and referenced here by offset (not pointer — the
// buffer may reallocate while later hits append). This is the meta
// protocol's zero-intermediate-copy GET path: the response codec reads
// the bytes straight out of the scratch region.
struct ScratchGetResult {
  std::size_t data_offset = 0;
  std::size_t data_size = 0;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
  std::int64_t expire_at = kNeverExpires;
  std::int64_t last_used = 0;   // previous access time (before this GET)
  bool fetched = false;         // had been fetched before this GET
  bool hit = false;
};

}  // namespace rp::memcache

#endif  // RP_MEMCACHE_ITEM_H_
