// Cache item model and expiry-time semantics for the mini-memcached.
#ifndef RP_MEMCACHE_ITEM_H_
#define RP_MEMCACHE_ITEM_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rp::memcache {

// Seconds since the unix epoch, as memcached reckons time.
std::int64_t NowSeconds();

// memcached expiry convention: 0 = never; values up to 30 days are relative
// to now; larger values are absolute epoch seconds; negative = already
// expired.
std::int64_t ResolveExptime(std::int64_t exptime, std::int64_t now);

constexpr std::int64_t kNeverExpires = 0;

// Whether an item with the given resolved deadline is expired at `now`.
constexpr bool IsExpired(std::int64_t expire_at, std::int64_t now) {
  return expire_at != kNeverExpires && expire_at <= now;
}

// The value record stored in the hash tables. Copyable (the relativistic
// engine's updates are copy-on-write); `last_used` is mutable+atomic so the
// lock-free GET fast path can stamp recency without a writer lock.
struct CacheValue {
  std::string data;
  std::uint32_t flags = 0;
  std::int64_t expire_at = kNeverExpires;
  std::uint64_t cas = 0;
  mutable std::atomic<std::int64_t> last_used{0};

  CacheValue() = default;
  CacheValue(std::string d, std::uint32_t f, std::int64_t e, std::uint64_t c)
      : data(std::move(d)), flags(f), expire_at(e), cas(c) {}

  CacheValue(const CacheValue& other)
      : data(other.data),
        flags(other.flags),
        expire_at(other.expire_at),
        cas(other.cas),
        last_used(other.last_used.load(std::memory_order_relaxed)) {}

  CacheValue& operator=(const CacheValue& other) {
    if (this != &other) {
      data = other.data;
      flags = other.flags;
      expire_at = other.expire_at;
      cas = other.cas;
      last_used.store(other.last_used.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }

  CacheValue(CacheValue&& other) noexcept
      : data(std::move(other.data)),
        flags(other.flags),
        expire_at(other.expire_at),
        cas(other.cas),
        last_used(other.last_used.load(std::memory_order_relaxed)) {}

  CacheValue& operator=(CacheValue&& other) noexcept {
    data = std::move(other.data);
    flags = other.flags;
    expire_at = other.expire_at;
    cas = other.cas;
    last_used.store(other.last_used.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
};

// What a GET hands back to the protocol layer (copied out of the engine).
struct StoredValue {
  std::string data;
  std::uint32_t flags = 0;
  std::uint64_t cas = 0;
};

}  // namespace rp::memcache

#endif  // RP_MEMCACHE_ITEM_H_
