// Quickstart: the RpHashMap public API in two minutes.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/rp_hash_map.h"

int main() {
  // A resizable relativistic hash map. Readers never block; writers
  // serialize internally. Auto-resize keeps the load factor bounded.
  rp::core::RpHashMap<std::string, std::string> map(/*initial_buckets=*/16);

  // --- Write side ---------------------------------------------------------
  map.Insert("linux", "kernel");
  map.Insert("memcached", "cache");
  map.InsertOrAssign("linux", "kernel 3.x");     // replace atomically
  map.Update("memcached", [](std::string& v) {  // copy-on-write update
    v += " daemon";
  });

  // --- Read side (wait-free; safe from any thread, any time) --------------
  if (auto v = map.Get("linux")) {
    std::printf("linux -> %s\n", v->c_str());
  }
  map.With("memcached", [](const std::string& v) {
    std::printf("memcached -> %s (visited in-place, zero copy)\n", v.c_str());
  });

  // --- Atomic rename: readers never observe the key as absent -------------
  map.Move("linux", "gnu-linux");
  std::printf("moved: contains(linux)=%d contains(gnu-linux)=%d\n",
              map.Contains("linux"), map.Contains("gnu-linux"));

  // --- Concurrent readers during an explicit resize ------------------------
  for (int i = 0; i < 10000; ++i) {
    map.Insert("key-" + std::to_string(i), std::to_string(i));
  }
  std::printf("grew to %zu entries across %zu buckets (auto-resized)\n",
              map.Size(), map.BucketCount());

  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)map.Contains("key-" + std::to_string(n++ % 10000));
      }
      lookups.fetch_add(n);
    });
  }
  map.Resize(64);     // shrink: one wait-for-readers
  map.Resize(16384);  // expand: publish + incremental unzip
  stop.store(true);
  for (auto& r : readers) {
    r.join();
  }

  const auto stats = map.LastResizeStats();
  std::printf(
      "resized %zu -> %zu buckets under %llu concurrent lookups:\n"
      "  %zu unzip passes, %zu grace periods, %zu pointer swings, %.2f ms\n",
      stats.from_buckets, stats.to_buckets,
      static_cast<unsigned long long>(lookups.load()), stats.unzip_passes,
      stats.grace_periods, stats.pointer_swings,
      static_cast<double>(stats.duration_ns) / 1e6);

  std::printf("done.\n");
  return 0;
}
