// route_cache: a kernel-style workload — an IP routing cache under
// concurrent lookups, route churn (insert/expire), and table resizing.
//
// This is the scenario the paper's introduction motivates: kernel hash
// tables (dcache, route cache, connection tracking) whose read path must
// never block and whose size cannot be known in advance. Readers here are
// "packet processors" doing route lookups; a control-plane thread adds and
// withdraws routes; the table resizes itself as the route count swings.
//
// Build & run:  ./build/examples/route_cache
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/rp_hash_map.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"

namespace {

struct Route {
  std::uint32_t next_hop;
  std::uint16_t interface;
  std::uint16_t metric;
};

using RouteTable = rp::core::RpHashMap<std::uint32_t, Route>;

constexpr std::uint32_t kStableRoutes = 50000;
constexpr std::uint32_t kChurnRoutes = 200000;
constexpr int kPacketThreads = 6;
constexpr double kRunSeconds = 2.0;

}  // namespace

int main() {
  rp::core::RpHashMapOptions options;
  options.auto_resize = true;
  options.max_load_factor = 1.0;
  RouteTable table(1024, options);

  // Install the stable part of the routing table.
  for (std::uint32_t dst = 0; dst < kStableRoutes; ++dst) {
    table.Insert(dst, Route{dst ^ 0xC0A80001, static_cast<std::uint16_t>(dst % 8),
                            static_cast<std::uint16_t>(dst % 16)});
  }
  std::printf("installed %zu stable routes, %zu buckets\n", table.Size(),
              table.BucketCount());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> route_misses{0};

  // Packet processors: route lookups on the hot path.
  std::vector<std::thread> packet_threads;
  for (int t = 0; t < kPacketThreads; ++t) {
    packet_threads.emplace_back([&, t] {
      rp::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      std::uint64_t n = 0;
      std::uint64_t misses = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto dst = static_cast<std::uint32_t>(rng.NextBounded(kStableRoutes));
        bool forwarded = false;
        table.With(dst, [&](const Route& route) {
          // "Forward the packet": consume the route fields.
          forwarded = (route.next_hop ^ route.interface) != 0xFFFFFFFF;
        });
        if (!forwarded) {
          ++misses;  // a stable route must never be missing
        }
        ++n;
      }
      lookups.fetch_add(n);
      route_misses.fetch_add(misses);
    });
  }

  // Control plane: bursts of dynamic routes appear and get withdrawn,
  // swinging the table size (auto-resize reacts both directions).
  std::thread control([&] {
    rp::Xoshiro256 rng(99);
    int epoch = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint32_t base = kStableRoutes + (epoch % 2) * kChurnRoutes;
      for (std::uint32_t i = 0; i < kChurnRoutes && !stop.load(std::memory_order_relaxed); ++i) {
        table.Insert(base + i, Route{base + i, 1, 1});
      }
      for (std::uint32_t i = 0; i < kChurnRoutes && !stop.load(std::memory_order_relaxed); ++i) {
        table.Erase(base + i);
      }
      ++epoch;
    }
  });

  rp::Stopwatch watch;
  std::size_t max_buckets = 0;
  std::size_t min_buckets = SIZE_MAX;
  while (watch.ElapsedSeconds() < kRunSeconds) {
    max_buckets = std::max(max_buckets, table.BucketCount());
    min_buckets = std::min(min_buckets, table.BucketCount());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : packet_threads) {
    t.join();
  }
  control.join();

  const double rate = static_cast<double>(lookups.load()) / watch.ElapsedSeconds();
  std::printf("\n--- results ---\n");
  std::printf("route lookups: %s aggregate (%d packet threads)\n",
              rp::FormatThroughput(rate).c_str(), kPacketThreads);
  std::printf("stable-route misses: %llu (must be 0 — readers never lose a route)\n",
              static_cast<unsigned long long>(route_misses.load()));
  std::printf("bucket count swung between %zu and %zu during churn\n",
              min_buckets, max_buckets);
  std::printf("final: %zu routes, %zu buckets, %llu resizes total\n",
              table.Size(), table.BucketCount(),
              static_cast<unsigned long long>(table.ResizeCount()));
  return route_misses.load() == 0 ? 0 : 1;
}
