// dentry_cache: a kernel-style directory-entry cache built from two
// relativistic structures working together.
//
//   * A resizable RP hash map keyed by (parent inode, name) — the kernel
//     dcache analogue the paper's resize algorithm was designed for, with a
//     deferred rhashtable-style ResizeWorker absorbing resize cost off the
//     application threads.
//   * A relativistic radix tree keyed by inode number, serving stat-style
//     inode lookups.
//
// Worker threads resolve paths (hash-map lookups) and stat inodes (radix-
// tree lookups) with wait-free reads, while one "VFS" thread creates and
// unlinks files, and the resize worker grows/shrinks the table under them.
//
// Build & run:  ./build/examples/dentry_cache
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/resize_worker.h"
#include "src/core/rp_hash_map.h"
#include "src/rp/radix_tree.h"

namespace {

struct DentryKey {
  std::uint64_t parent_inode;
  std::string name;

  bool operator==(const DentryKey&) const = default;
};

struct DentryKeyHash {
  std::size_t operator()(const DentryKey& key) const {
    // FNV-1a over the name, mixed with the parent inode.
    std::uint64_t h = 1469598103934665603ULL ^ key.parent_inode;
    for (char c : key.name) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h);
  }
};

struct Inode {
  std::uint64_t ino;
  std::uint64_t size_bytes;
  std::uint64_t mtime;
};

using Dcache = rp::core::RpHashMap<DentryKey, std::uint64_t, DentryKeyHash>;
using InodeTable = rp::rp::RadixTree<Inode>;

}  // namespace

int main() {
  rp::core::RpHashMapOptions map_options;
  map_options.auto_resize = false;  // the worker owns resize policy
  Dcache dcache(256, map_options);
  InodeTable inodes;

  rp::core::ResizeWorkerOptions worker_options;
  worker_options.min_buckets = 256;
  rp::core::ResizeWorker<Dcache> resizer(dcache, worker_options);

  // Seed a directory tree: 64 directories of 256 files.
  std::atomic<std::uint64_t> next_ino{2};
  constexpr std::uint64_t kDirs = 64;
  constexpr std::uint64_t kFilesPerDir = 256;
  for (std::uint64_t d = 0; d < kDirs; ++d) {
    const std::uint64_t dir_ino = next_ino.fetch_add(1);
    dcache.Insert(DentryKey{1, "dir" + std::to_string(d)}, dir_ino);
    inodes.Insert(dir_ino, {dir_ino, 4096, 0});
    for (std::uint64_t f = 0; f < kFilesPerDir; ++f) {
      const std::uint64_t ino = next_ino.fetch_add(1);
      dcache.Insert(DentryKey{dir_ino, "file" + std::to_string(f)}, ino);
      inodes.Insert(ino, {ino, f * 512, 0});
    }
  }
  resizer.Nudge();
  std::printf("seeded %zu dentries, %zu inodes, %zu buckets\n", dcache.Size(),
              inodes.Size(), dcache.BucketCount());

  // Path-resolution readers: /dirD/fileF → dentry lookup → inode stat.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> resolutions{0};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t n = static_cast<std::uint64_t>(t) * 7919;
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        n = n * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t d = (n >> 16) % kDirs;
        const std::uint64_t f = (n >> 40) % kFilesPerDir;
        const auto dir_ino = dcache.Get(DentryKey{1, "dir" + std::to_string(d)});
        if (!dir_ino) {
          misses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const auto ino =
            dcache.Get(DentryKey{*dir_ino, "file" + std::to_string(f)});
        if (!ino) {
          misses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        bool ok = inodes.With(*ino, [&](const Inode& inode) {
          (void)inode.size_bytes;  // "stat"
        });
        if (!ok) {
          misses.fetch_add(1, std::memory_order_relaxed);
        }
        ++local;
      }
      resolutions.fetch_add(local);
    });
  }

  // One VFS writer: create and unlink temp files, nudging the resizer.
  std::thread vfs([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    std::uint64_t created = 0;
    std::uint64_t round = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      // Burst-create a temp directory's worth of files...
      const std::uint64_t dir_ino = next_ino.fetch_add(1);
      dcache.Insert(DentryKey{1, "tmp" + std::to_string(round)}, dir_ino);
      inodes.Insert(dir_ino, {dir_ino, 4096, round});
      for (std::uint64_t f = 0; f < 512; ++f) {
        const std::uint64_t ino = next_ino.fetch_add(1);
        dcache.Insert(DentryKey{dir_ino, "t" + std::to_string(f)}, ino);
        inodes.Insert(ino, {ino, 0, round});
        ++created;
      }
      resizer.Nudge();
      // ...then unlink them again.
      for (std::uint64_t f = 0; f < 512; ++f) {
        const DentryKey key{dir_ino, "t" + std::to_string(f)};
        if (auto ino = dcache.Get(key)) {
          dcache.Erase(key);
          inodes.Erase(*ino);
        }
      }
      dcache.Erase(DentryKey{1, "tmp" + std::to_string(round)});
      inodes.Erase(dir_ino);
      resizer.Nudge();
      ++round;
    }
    std::printf("vfs writer: %" PRIu64 " creates across %" PRIu64 " rounds\n",
                created, round);
  });

  vfs.join();
  stop.store(true);
  for (auto& r : readers) {
    r.join();
  }
  resizer.Stop();

  std::printf("resolved %" PRIu64 " paths, %" PRIu64
              " misses (stable files must never miss: %s)\n",
              resolutions.load(), misses.load(),
              misses.load() == 0 ? "OK" : "FAIL");
  std::printf("final: %zu dentries, %zu buckets after %" PRIu64
              " worker resizes, inode tree height %u\n",
              dcache.Size(), dcache.BucketCount(), resizer.ResizesPerformed(),
              inodes.Height());
  return misses.load() == 0 ? 0 : 1;
}
