// memcached_server: a real TCP key-value server speaking the memcached
// text protocol, backed by the relativistic engine (or the locked engine
// with --engine=locked for comparison). The front end is the epoll
// event-loop server: --workers sizes the event-loop pool, --max-conns caps
// concurrent connections, --idle-ms evicts idle ones. The cache itself is
// tuned with --shards (keyspace partitions; power of two; rp engine only)
// and --max-bytes (resident-byte cap, k/m/g suffixes accepted; 0 = off);
// the payload slab allocator with --slab-growth (size-class factor,
// memcached -f) and --slab-chunk-max (largest pooled chunk; 0 = no slabs).
//
// Run:   ./build/examples/memcached_server [--port=11211] [--engine=rp|locked]
//                                          [--workers=N] [--max-conns=N]
//                                          [--idle-ms=N] [--shards=N]
//                                          [--max-bytes=N[k|m|g]]
//                                          [--slab-growth=F]
//                                          [--slab-chunk-max=N[k|m]]
// Talk to it:
//   printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc 127.0.0.1 11211
//
// Pass --demo to run a built-in loopback client session instead of serving
// forever (used by CI and the bench pipeline).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/memcache/cluster/local_cluster.h"
#include "src/memcache/rp_engine.h"
#include "src/memcache/server.h"
#include "src/memcache/workload.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

// Parses a byte count with an optional k/m/g suffix ("64m" = 64 MiB).
// Returns false on malformed input, negative values, or overflow.
bool ParseBytes(const char* arg, std::size_t* out) {
  if (arg[0] == '-') {
    return false;  // strtoull would silently wrap a negative
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long base = std::strtoull(arg, &end, 10);
  if (end == arg || errno == ERANGE) {
    return false;
  }
  unsigned long long scale = 1;
  if (*end == 'k' || *end == 'K') {
    scale = 1ull << 10;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    scale = 1ull << 20;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    scale = 1ull << 30;
    ++end;
  }
  if (*end != '\0') {
    return false;
  }
  if (scale != 1 && base > ~0ull / scale) {
    return false;  // suffix multiply would overflow
  }
  *out = static_cast<std::size_t>(base * scale);
  return true;
}

// Simple demo client exercising the wire protocol end to end.
int RunDemo(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    return 1;
  }
  const char* script =
      "set motd 0 0 26\r\nrelativistic hashing works\r\n"
      "get motd\r\n"
      "set counter 0 0 1\r\n0\r\n"
      "incr counter 41\r\n"
      "incr counter 1\r\n"
      "gets motd\r\n"
      "stats\r\n"
      "quit\r\n";
  if (::send(fd, script, std::strlen(script), 0) < 0) {
    std::perror("send");
    ::close(fd);
    return 1;
  }
  char buf[8192];
  std::printf("--- server responses ---\n");
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      break;
    }
    buf[n] = '\0';
    std::fputs(buf, stdout);
  }
  ::close(fd);
  std::printf("--- demo complete ---\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 11211;
  bool demo = false;
  std::size_t cluster_backends = 0;  // 0 = single-engine mode
  std::string engine_name = "rp";
  rp::memcache::ServerOptions options;
  options.num_workers = 2;
  rp::memcache::EngineConfig config;
  config.initial_buckets = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      options.num_workers = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-conns=", 12) == 0) {
      options.max_connections =
          static_cast<std::size_t>(std::atoi(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--idle-ms=", 10) == 0) {
      options.idle_timeout =
          std::chrono::milliseconds(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      char* end = nullptr;
      const long shards = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || shards < 1 || shards > 4096) {
        std::fprintf(stderr, "bad --shards value (want 1..4096): %s\n",
                     argv[i] + 9);
        return 2;
      }
      config.shards = static_cast<std::size_t>(shards);
    } else if (std::strncmp(argv[i], "--max-bytes=", 12) == 0) {
      if (!ParseBytes(argv[i] + 12, &config.max_bytes)) {
        std::fprintf(stderr, "bad --max-bytes value: %s\n", argv[i] + 12);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--slab-growth=", 14) == 0) {
      // memcached's -f: size-class growth factor. Out-of-band values are
      // clamped by the allocator; reject only unparseable input here.
      char* end = nullptr;
      const double growth = std::strtod(argv[i] + 14, &end);
      if (end == argv[i] + 14 || *end != '\0') {
        std::fprintf(stderr, "bad --slab-growth value: %s\n", argv[i] + 14);
        return 2;
      }
      config.slab_growth = growth;
    } else if (std::strncmp(argv[i], "--slab-chunk-max=", 17) == 0) {
      // Largest pooled chunk (k/m suffixes accepted); 0 disables slab
      // pooling entirely (every payload is an exact-size heap block).
      if (!ParseBytes(argv[i] + 17, &config.slab_chunk_max)) {
        std::fprintf(stderr, "bad --slab-chunk-max value: %s\n", argv[i] + 17);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--cluster=", 10) == 0) {
      // N engines, each behind its own loopback server, fronted by a
      // consistent-hash proxy on --port. Same wire protocol, same flags.
      char* end = nullptr;
      const long n = std::strtol(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || n < 1 || n > 64) {
        std::fprintf(stderr, "bad --cluster value (want 1..64): %s\n",
                     argv[i] + 10);
        return 2;
      }
      cluster_backends = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
      port = 0;  // ephemeral
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--engine=rp|locked] [--workers=N] "
                   "[--max-conns=N] [--idle-ms=N] [--shards=N] "
                   "[--max-bytes=N[k|m|g]] [--slab-growth=F] "
                   "[--slab-chunk-max=N[k|m]] [--cluster=N] [--demo]\n",
                   argv[0]);
      return 2;
    }
  }

  if (cluster_backends > 0) {
    rp::memcache::cluster::LocalClusterOptions cluster_options;
    cluster_options.backends = cluster_backends;
    cluster_options.engine = engine_name;
    cluster_options.engine_config = config;
    cluster_options.proxy_server = options;
    cluster_options.proxy_port = port;
    rp::memcache::cluster::LocalCluster cluster(cluster_options);
    if (!cluster.Start()) {
      std::fprintf(stderr, "failed to start cluster: %s\n",
                   cluster.error().c_str());
      return 1;
    }
    std::printf(
        "mini-memcached cluster (%zu %s backends) proxy listening on "
        "127.0.0.1:%u\n",
        cluster.backend_count(), engine_name.c_str(), cluster.proxy_port());
    for (std::size_t i = 0; i < cluster.backend_count(); ++i) {
      std::printf("  %s on 127.0.0.1:%u\n",
                  rp::memcache::cluster::LocalCluster::BackendName(i).c_str(),
                  cluster.backend_port(i));
    }
    if (demo) {
      return RunDemo(cluster.proxy_port());
    }
    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (!g_stop) {
      ::usleep(100 * 1000);
    }
    std::printf("shutting down cluster\n");
    return 0;
  }

  std::unique_ptr<rp::memcache::CacheEngine> engine =
      rp::memcache::MakeEngine(engine_name, config);
  if (engine == nullptr) {
    std::fprintf(stderr, "unknown engine: %s (want rp or locked)\n",
                 engine_name.c_str());
    return 2;
  }

  rp::memcache::Server server(*engine, port, options);
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start server: %s\n", server.error().c_str());
    return 1;
  }
  // Report the engine's effective geometry, not the raw flag: the rp
  // engine rounds shards to a power of two and the locked engine ignores
  // the knob entirely.
  std::size_t effective_shards = 1;
  if (const auto* rp = dynamic_cast<rp::memcache::RpEngine*>(engine.get())) {
    effective_shards = rp->ShardCount();
  }
  std::printf(
      "mini-memcached (%s engine, %zu shards, max_bytes=%zu) listening on "
      "127.0.0.1:%u (%zu event-loop workers, max %zu connections)\n",
      engine->Name(), effective_shards, config.max_bytes, server.port(),
      options.num_workers, options.max_connections);

  if (demo) {
    const int rc = RunDemo(server.port());
    server.Stop();
    return rc;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(100 * 1000);
  }
  std::printf("shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(server.connections_handled()));
  server.Stop();
  return 0;
}
