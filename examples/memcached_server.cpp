// memcached_server: a real TCP key-value server speaking the memcached
// text protocol, backed by the relativistic engine (or the locked engine
// with --engine=locked for comparison). The front end is the epoll
// event-loop server: --workers sizes the event-loop pool, --max-conns caps
// concurrent connections, --idle-ms evicts idle ones.
//
// Run:   ./build/examples/memcached_server [--port=11211] [--engine=rp|locked]
//                                          [--workers=N] [--max-conns=N]
//                                          [--idle-ms=N]
// Talk to it:
//   printf 'set greeting 0 0 5\r\nhello\r\nget greeting\r\nquit\r\n' | nc 127.0.0.1 11211
//
// Pass --demo to run a built-in loopback client session instead of serving
// forever (used by CI and the bench pipeline).
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/memcache/locked_engine.h"
#include "src/memcache/rp_engine.h"
#include "src/memcache/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

// Simple demo client exercising the wire protocol end to end.
int RunDemo(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    return 1;
  }
  const char* script =
      "set motd 0 0 26\r\nrelativistic hashing works\r\n"
      "get motd\r\n"
      "set counter 0 0 1\r\n0\r\n"
      "incr counter 41\r\n"
      "incr counter 1\r\n"
      "gets motd\r\n"
      "stats\r\n"
      "quit\r\n";
  if (::send(fd, script, std::strlen(script), 0) < 0) {
    std::perror("send");
    ::close(fd);
    return 1;
  }
  char buf[8192];
  std::printf("--- server responses ---\n");
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      break;
    }
    buf[n] = '\0';
    std::fputs(buf, stdout);
  }
  ::close(fd);
  std::printf("--- demo complete ---\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 11211;
  bool demo = false;
  std::string engine_name = "rp";
  rp::memcache::ServerOptions options;
  options.num_workers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<std::uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_name = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      options.num_workers = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--max-conns=", 12) == 0) {
      options.max_connections =
          static_cast<std::size_t>(std::atoi(argv[i] + 12));
    } else if (std::strncmp(argv[i], "--idle-ms=", 10) == 0) {
      options.idle_timeout =
          std::chrono::milliseconds(std::atoi(argv[i] + 10));
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
      port = 0;  // ephemeral
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--engine=rp|locked] [--workers=N] "
                   "[--max-conns=N] [--idle-ms=N] [--demo]\n",
                   argv[0]);
      return 2;
    }
  }

  std::unique_ptr<rp::memcache::CacheEngine> engine;
  rp::memcache::EngineConfig config;
  config.initial_buckets = 4096;
  if (engine_name == "locked") {
    engine = std::make_unique<rp::memcache::LockedEngine>(config);
  } else {
    engine = std::make_unique<rp::memcache::RpEngine>(config);
  }

  rp::memcache::Server server(*engine, port, options);
  if (!server.Start()) {
    std::fprintf(stderr, "failed to start server: %s\n", server.error().c_str());
    return 1;
  }
  std::printf(
      "mini-memcached (%s engine) listening on 127.0.0.1:%u "
      "(%zu event-loop workers, max %zu connections)\n",
      engine->Name(), server.port(), options.num_workers,
      options.max_connections);

  if (demo) {
    const int rc = RunDemo(server.port());
    server.Stop();
    return rc;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(100 * 1000);
  }
  std::printf("shutting down (%llu connections served)\n",
              static_cast<unsigned long long>(server.connections_handled()));
  server.Stop();
  return 0;
}
