// resize_trace: an instrumented walk-through of the paper's two resize
// algorithms, printing what each phase does and what it costs.
//
// Run:  ./build/examples/resize_trace
#include <cstdio>
#include <cstdint>

#include "src/core/rp_hash_map.h"
#include "src/rcu/epoch.h"

namespace {

using Map = rp::core::RpHashMap<std::uint64_t, std::uint64_t>;

void Report(const char* label, const rp::core::ResizeStats& stats,
            std::uint64_t gp_before, std::uint64_t gp_after) {
  std::printf("%s\n", label);
  std::printf("  buckets:        %zu -> %zu\n", stats.from_buckets, stats.to_buckets);
  std::printf("  unzip passes:   %zu\n", stats.unzip_passes);
  std::printf("  grace periods:  %zu (domain counter advanced %llu)\n",
              stats.grace_periods,
              static_cast<unsigned long long>(gp_after - gp_before));
  std::printf("  pointer swings: %zu\n", stats.pointer_swings);
  std::printf("  duration:       %.3f ms\n\n",
              static_cast<double>(stats.duration_ns) / 1e6);
}

}  // namespace

int main() {
  std::printf(
      "Tracing the relativistic resize algorithms "
      "(Triplett/McKenney/Walpole, ATC'11)\n\n");

  rp::core::RpHashMapOptions options;
  options.auto_resize = false;

  for (const std::uint64_t load : {1ULL, 4ULL, 16ULL}) {
    constexpr std::size_t kBuckets = 1024;
    Map map(kBuckets, options);
    for (std::uint64_t i = 0; i < kBuckets * load; ++i) {
      map.Insert(i, i);
    }

    std::printf("== load factor %llu (%llu entries in %zu buckets) ==\n",
                static_cast<unsigned long long>(load),
                static_cast<unsigned long long>(kBuckets * load), kBuckets);

    // EXPAND: allocate 2x buckets -> aim each new bucket into the zipped old
    // chain -> publish -> wait for readers -> unzip one swing per chain per
    // pass, waiting for readers between passes -> free old array.
    std::uint64_t gp0 = rp::rcu::Epoch::GracePeriodCount();
    map.Resize(kBuckets * 2);
    Report("EXPAND (unzip)", map.LastResizeStats(), gp0,
           rp::rcu::Epoch::GracePeriodCount());

    // SHRINK: allocate half-size array -> concatenate sibling chains (a
    // reader of bucket j transiently sees bucket j+half's entries appended:
    // imprecise but complete) -> publish -> ONE wait-for-readers -> free.
    gp0 = rp::rcu::Epoch::GracePeriodCount();
    map.Resize(kBuckets / 2);
    Report("SHRINK x4 (concatenate, 2 halvings)", map.LastResizeStats(), gp0,
           rp::rcu::Epoch::GracePeriodCount());

    std::printf("  buckets precise after resizes: %s\n\n",
                map.BucketsArePrecise() ? "yes" : "NO (bug!)");
  }

  std::printf(
      "Note how expand grace periods track the chain interleaving (runs),\n"
      "not the element count, and shrink is always one grace period per\n"
      "halving. That is the paper's core algorithmic result.\n");
  return 0;
}
